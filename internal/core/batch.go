package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"attrank/internal/sparse"
)

// DefaultBatchWidth is the block width RankBatch uses when slicing a
// parameter list into SpMM blocks. Sixteen lanes span two 64-byte cache
// lines of float64s per gathered matrix column; the kernel processes
// them as two register-tiled chunks of eight inside the row loop, so
// the second chunk's matrix bytes come from L1. On the grid-sweep
// workload width 16 measures consistently a few percent ahead of 8 and
// clearly ahead of 4 and 32 (see BENCH_sweep.json's width table,
// re-measured by attrank-bench -sweep).
const DefaultBatchWidth = 16

// Deflation policy: a lane that converges or exhausts its budget is
// retired at the end of that iteration, and the block immediately
// repacks to the surviving width. Measured on the sweep workload the
// per-step kernel cost is close to linear in the block width (the
// gather traffic per lane dominates once the block exceeds L2), so
// carrying a dead lane for even one extra step costs as much as a live
// one — there is no threshold worth waiting for. Retirement and
// repacking share one traversal of the block (see retireLanes), which
// also replaces per-lane strided extraction.

// RankBatch computes AttRank scores for a slice of parameterizations in
// blocked SpMM passes over the compiled matrix: each block of up to
// DefaultBatchWidth columns runs its power iterations through one
// traversal of the nonzeros per step, amortizing the dominant
// matrix-streaming cost across the block. Every column is bit-identical
// to op.Rank(now, ps[i]) — scores, residuals, iteration counts and
// convergence flags — for any mix of α/β/γ/y/w, warm starts, and
// tolerances.
//
// Semantics per column:
//   - ps[i].Workers is resolved exactly as in Rank: 0 delegates the
//     cell to the serial CSC reference kernel, per cell — the tiled
//     kernel accumulates its residual in storage (relabeled) row order,
//     so no block can reproduce the serial residual bits and serial
//     means serial. Negative uses GOMAXPROCS. Iterating columns with
//     different resolved partition counts never share a block, because
//     the partition count shapes the residual reduction tree.
//   - a column that converges (L1 residual < tol) or exhausts its
//     iteration budget is retired at the end of that iteration and the
//     block immediately repacks in place to the surviving width (see
//     the deflation-policy note above); a block of width one falls back
//     to the single-vector kernel.
//   - α = 0 columns take the single-evaluation fast path and never enter
//     a block; a batch with a single iterating column delegates to Rank.
//
// Results and errors are parallel to ps: results[i] is nil exactly when
// errs[i] is non-nil, and one invalid cell does not fail its neighbors.
// Unlike Rank, Results of the same batch share attention/recency backing
// arrays when their (y, w) agree — treat those vectors as read-only.
func (op *Operator) RankBatch(now int, ps []Params) ([]*Result, []error) {
	return op.RankBatchWidth(now, ps, DefaultBatchWidth)
}

// RankBatchWidth is RankBatch with an explicit block-width cap; width
// below one falls back to DefaultBatchWidth. It exists for width studies
// (the bench's B-sweep) — production callers want RankBatch.
func (op *Operator) RankBatchWidth(now int, ps []Params, width int) ([]*Result, []error) {
	if width < 1 {
		width = DefaultBatchWidth
	}
	results := make([]*Result, len(ps))
	errs := make([]error, len(ps))
	n := op.net.N()
	started := time.Now()

	// attShared/recShared hand out one private copy per distinct key for
	// the whole batch: the kernel reads these directly and the Results
	// share them.
	attShared := map[attKey][]float64{}
	recShared := map[recKey][]float64{}

	// Validate every cell and peel off the ones that never iterate.
	var pending []int // indices still needing power iterations
	for i := range ps {
		p := ps[i]
		if err := p.Validate(); err != nil {
			errs[i] = err
			continue
		}
		if n == 0 {
			errs[i] = ErrEmptyNetwork
			continue
		}
		ak := attKey{now: now, years: p.AttentionYears}
		rk := recKey{now: now, w: p.W}
		if _, ok := attShared[ak]; !ok {
			attShared[ak] = op.attention(now, p.AttentionYears)
		}
		if _, ok := recShared[rk]; !ok {
			recShared[rk] = op.recency(now, p.W)
		}
		att, rec := attShared[ak], recShared[rk]
		if p.Alpha == 0 {
			// Limit case discussed in §4.4: a single evaluation suffices.
			scores := make([]float64, n)
			for j := range scores {
				scores[j] = p.Beta*att[j] + p.Gamma*rec[j]
			}
			res := &Result{
				Scores: scores, Attention: att, Recency: rec,
				Iterations: 1, Converged: true, Residuals: []float64{0},
				Duration: time.Since(started),
			}
			results[i] = res
			op.observeRank(res, p)
			continue
		}
		if p.Workers == 0 {
			// Serial reference cells never batch (see the contract note
			// above): run each through Rank's Workers = 0 path.
			results[i], errs[i] = op.Rank(now, p)
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return results, errs
	}
	if len(pending) == 1 {
		i := pending[0]
		results[i], errs[i] = op.Rank(now, ps[i])
		return results, errs
	}

	m, release, err := op.acquireTiledMulti()
	if err != nil {
		for _, i := range pending {
			errs[i] = fmt.Errorf("core: %w", err)
		}
		return results, errs
	}
	defer release()

	// Group by resolved partition count, preserving input order within
	// each group, then run blocks of at most DefaultBatchWidth.
	groups := map[int][]int{}
	var order []int
	for _, i := range pending {
		parts := ps[i].Workers // never 0 here: serial cells were delegated above
		if parts < 0 {
			parts = runtime.GOMAXPROCS(0)
		}
		if _, ok := groups[parts]; !ok {
			order = append(order, parts)
		}
		groups[parts] = append(groups[parts], i)
	}
	// Blocks run sequentially within this call, so one set of iteration
	// buffers sized for the widest block serves them all — a 250-cell
	// sweep would otherwise churn ~2·n·width float64s of garbage per
	// block.
	var buf *blockBuffers
	for _, parts := range order {
		cells := groups[parts]
		for len(cells) > 0 {
			w := len(cells)
			if w > width {
				w = width
			}
			block := cells[:w]
			cells = cells[w:]
			if w == 1 {
				i := block[0]
				results[i], errs[i] = op.Rank(now, ps[i])
				continue
			}
			if buf == nil {
				buf = &blockBuffers{
					x:    make([]float64, n*width),
					next: make([]float64, n*width),
				}
			}
			op.rankBlock(now, ps, block, parts, m, buf, attShared, recShared, results, errs, started)
		}
	}
	return results, errs
}

// blockBuffers are the per-call iteration buffers rankBlock slices its
// working set from; nothing in them outlives the block (retireLanes and
// finishLane copy scores out), so consecutive blocks reuse them freely.
type blockBuffers struct {
	x, next []float64
}

// blockLane tracks one in-flight column of a block.
type blockLane struct {
	cell       int // index into the caller's ps/results
	slot       int // current stride position in the block
	p          Params
	att, rec   []float64 // original id space, exposed via Result
	attP, recP []float64 // storage (permuted) space, fed to the kernel
	seed       []float64 // validated warm start; nil means uniform
	res        *Result
}

// rankBlock runs one SpMM block to completion. slots[j] is the lane in
// kernel stride position j; a lane that converges or exhausts its
// budget is retired at the end of that iteration and the block compacts
// in place to the surviving width. A lone survivor finishes on the
// single-vector kernel. The block iterates in storage (permuted) id
// space; seeds are permuted in and scores permuted back out, so
// results/errs — written at the cells' original indices — stay in
// original id space exactly as Rank's.
func (op *Operator) rankBlock(now int, ps []Params, block []int, parts int, m *sparse.TiledMulti,
	buf *blockBuffers, attShared map[attKey][]float64, recShared map[recKey][]float64,
	results []*Result, errs []error, started time.Time) {

	n := op.net.N()
	perm, inv := op.perm, op.inv
	slots := make([]*blockLane, 0, len(block))

	// Validate each lane's start vector. Warm starts are copied,
	// validated, and normalized — the same operations, in the same
	// order, as Rank — and staged until the single seeding pass below.
	for _, i := range block {
		p := ps[i]
		var seedv []float64
		if p.Start != nil {
			if len(p.Start) != n {
				errs[i] = fmt.Errorf("core: warm start has %d entries for %d papers", len(p.Start), n)
				continue
			}
			seedv = make([]float64, n)
			copy(seedv, p.Start)
			bad := false
			for j, v := range seedv {
				if v < 0 || math.IsNaN(v) {
					errs[i] = fmt.Errorf("core: warm start entry %d is %v", j, v)
					bad = true
					break
				}
			}
			if bad {
				continue
			}
			sparse.Normalize(seedv)
		}
		lane := &blockLane{
			cell: i,
			p:    p,
			att:  attShared[attKey{now: now, years: p.AttentionYears}],
			rec:  recShared[recKey{now: now, w: p.W}],
			attP: op.permutedAttention(now, p.AttentionYears),
			recP: op.permutedRecency(now, p.W),
			seed: seedv,
			res:  &Result{},
		}
		lane.res.Attention = lane.att
		lane.res.Recency = lane.rec
		lane.slot = len(slots)
		slots = append(slots, lane)
	}
	if len(slots) == 0 {
		return
	}
	// The block is built at the surviving width directly; lanes that
	// failed warm-start validation never occupy a slot. Stale contents
	// of the reused buffers are harmless: every element of x is written
	// here and every element of next by the first kernel step.
	width := len(slots)
	x := buf.x[:n*width]
	next := buf.next[:n*width]
	uni := 1 / float64(n)
	// Seed in storage order: row r of the block is original paper inv[r].
	for r := 0; r < n; r++ {
		base := r * width
		orig := inv[r]
		for j, lane := range slots {
			if lane.seed == nil {
				x[base+j] = uni
			} else {
				x[base+j] = lane.seed[orig]
			}
		}
	}
	for _, lane := range slots {
		lane.seed = nil
	}

	alpha := make([]float64, width)
	beta := make([]float64, width)
	gamma := make([]float64, width)
	resid := make([]float64, width)
	att := make([][]float64, width)
	rec := make([][]float64, width)
	reload := func() {
		for j, lane := range slots {
			alpha[j] = lane.p.Alpha
			beta[j] = lane.p.Beta
			gamma[j] = lane.p.Gamma
			att[j] = lane.attP
			rec[j] = lane.recP
		}
	}
	reload()

	dying := make([]*blockLane, 0, width)
	for iter := 1; len(slots) > 0; iter++ {
		if len(slots) == 1 {
			op.finishLane(slots[0], x, width, parts, iter, perm, started, results, errs)
			return
		}
		m.Step(next, x, att[:width], rec[:width],
			alpha[:width], beta[:width], gamma[:width], resid[:width], parts)
		x, next = next, x
		keep := slots[:0]
		dying = dying[:0]
		for _, lane := range slots {
			r := resid[lane.slot]
			lane.res.Residuals = append(lane.res.Residuals, r)
			mIterationResidual.Observe(r)
			lane.res.Iterations = iter
			if r < lane.p.tol() {
				lane.res.Converged = true
			} else if iter < lane.p.maxIter() {
				keep = append(keep, lane)
				continue
			}
			dying = append(dying, lane)
		}
		if len(dying) == 0 {
			continue
		}
		x, next, width = retireLanes(x, next, n, width, inv, keep, dying)
		for _, lane := range dying {
			lane.res.Duration = time.Since(started)
			results[lane.cell] = lane.res
			op.observeRank(lane.res, lane.p)
		}
		slots = keep
		reload()
	}
}

// retireLanes extracts the scores of the dying lanes — unpermuted back
// to original id space via inv — and compacts the survivors to a block
// of width len(keep), all in one row-major traversal — cheaper than one
// strided pass per retired lane, since each pass streams the whole
// block through the cache. Both slices list lanes in ascending slot
// order; within a row the dying slots are read before any compaction
// write can reach them, and a compaction write at r·newB+j never passes
// its read at r·oldB+slot (slot ≥ j, oldB > newB), so the operation is
// safe in place. next only shrinks: the kernel rewrites it in full each
// step.
func retireLanes(x, next []float64, n, oldB int, inv []int32, keep, dying []*blockLane) ([]float64, []float64, int) {
	for _, lane := range dying {
		lane.res.Scores = make([]float64, n)
	}
	newB := len(keep)
	for r := 0; r < n; r++ {
		src := r * oldB
		orig := inv[r]
		for _, lane := range dying {
			lane.res.Scores[orig] = x[src+lane.slot]
		}
		dst := r * newB
		for j, lane := range keep {
			x[dst+j] = x[src+lane.slot]
		}
	}
	for j, lane := range keep {
		lane.slot = j
	}
	return x[:n*newB], next[:n*newB], newB
}

// finishLane continues a lone surviving lane on the single-vector tiled
// kernel from iteration iter, exactly as Rank's parallel path would: the
// tiled kernel at the same partition count is bit-identical lane for
// lane with the batched kernel, so the switch is invisible in the bits.
// x is in storage space; the final scores are unpermuted on the way out.
func (op *Operator) finishLane(lane *blockLane, x []float64, width, parts, iter int, perm []int32, started time.Time,
	results []*Result, errs []error) {
	n := len(x) / width
	xv := make([]float64, n)
	nv := make([]float64, n)
	for r := 0; r < n; r++ {
		xv[r] = x[r*width+lane.slot]
	}
	ti, release, err := op.acquireTiled()
	if err != nil {
		errs[lane.cell] = fmt.Errorf("core: %w", err)
		return
	}
	defer release()
	p := lane.p
	for ; iter <= p.maxIter(); iter++ {
		r := ti.Step(nv, xv, lane.attP, lane.recP, p.Alpha, p.Beta, p.Gamma, parts)
		lane.res.Residuals = append(lane.res.Residuals, r)
		mIterationResidual.Observe(r)
		xv, nv = nv, xv
		lane.res.Iterations = iter
		if r < p.tol() {
			lane.res.Converged = true
			break
		}
	}
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = xv[perm[i]]
	}
	lane.res.Scores = scores
	lane.res.Duration = time.Since(started)
	results[lane.cell] = lane.res
	op.observeRank(lane.res, p)
}
