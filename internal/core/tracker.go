package core

import (
	"fmt"

	"attrank/internal/graph"
)

// Tracker maintains AttRank scores over a growing citation corpus — the
// production pattern for a scholarly search engine that re-ranks after
// each ingestion batch (e.g. yearly). Each Update warm-starts the power
// iteration from the previous scores, matched by paper ID, so the
// iteration converges in a fraction of the cold-start iterations while
// reaching the same fixed point (the fixed point of Eq. 4 is independent
// of the starting vector).
type Tracker struct {
	params Params
	// last maps paper ID → score from the previous Update.
	last map[string]float64
}

// NewTracker validates the parameters (Start must be unset; the tracker
// owns warm starting) and returns an empty tracker.
func NewTracker(p Params) (*Tracker, error) {
	if p.Start != nil {
		return nil, fmt.Errorf("core: tracker manages warm starts itself; Params.Start must be nil")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Tracker{params: p, last: make(map[string]float64)}, nil
}

// Params returns the tracker's configuration.
func (t *Tracker) Params() Params { return t.params }

// Tracked returns how many paper scores the tracker currently holds.
func (t *Tracker) Tracked() int { return len(t.last) }

// Seed primes the warm-start state from externally computed scores, as
// if the previous Update had produced them. This is how a replication
// follower joins a leader's warm-start chain mid-stream: seeded with
// the leader's published scores for the same network, every subsequent
// Update starts from the same vector the leader's does and therefore
// reproduces the leader's results bit for bit.
// A length mismatch — scores from a different (e.g. pre-compaction)
// vertex count — clears the carried state before erroring: the stale
// vector must not silently warm-start the next Update, which instead
// re-seeds itself from its own exact result.
func (t *Tracker) Seed(net *graph.Network, scores []float64) error {
	if net.N() != len(scores) {
		t.last = make(map[string]float64)
		return fmt.Errorf("core: tracker seed: %d scores for %d papers", len(scores), net.N())
	}
	t.last = make(map[string]float64, len(scores))
	for i := int32(0); int(i) < net.N(); i++ {
		t.last[net.Paper(i).ID] = scores[i]
	}
	return nil
}

// Update ranks the network's state at time now, warm-starting from the
// previous update where paper IDs overlap. Papers unseen before start at
// the mean of the carried-over mass (or uniform on the first call).
func (t *Tracker) Update(net *graph.Network, now int) (*Result, error) {
	p := t.params
	if len(t.last) > 0 && net.N() > 0 {
		start := make([]float64, net.N())
		carried, hits := 0.0, 0
		for i := int32(0); int(i) < net.N(); i++ {
			if v, ok := t.last[net.Paper(i).ID]; ok {
				start[i] = v
				carried += v
				hits++
			}
		}
		fill := 1.0 / float64(net.N())
		if hits > 0 {
			fill = carried / float64(hits)
		}
		for i := range start {
			if start[i] == 0 {
				start[i] = fill
			}
		}
		p.Start = start
	}
	res, err := Rank(net, now, p)
	if err != nil {
		return nil, err
	}
	t.last = make(map[string]float64, net.N())
	for i := int32(0); int(i) < net.N(); i++ {
		t.last[net.Paper(i).ID] = res.Scores[i]
	}
	return res, nil
}
