package core

import (
	"fmt"
	"runtime"
	"time"

	"attrank/internal/sparse"
)

// DefaultPageRankMaxIter bounds the PageRank power iteration. PageRank
// converges slower than AttRank at equal damping (no attention/recency
// mass shortens the spectral gap), so it gets the baselines package's
// budget rather than AttRank's.
const DefaultPageRankMaxIter = 500

// PageRankParams configures Operator.PageRank. The zero value of Tol and
// MaxIter selects DefaultTol and DefaultPageRankMaxIter; Workers selects
// the kernel exactly as Params.Workers does (0 = serial CSC reference,
// negative = GOMAXPROCS partitions).
type PageRankParams struct {
	// Alpha is the damping factor, in [0, 1).
	Alpha   float64
	Tol     float64
	MaxIter int
	Workers int
}

// Validate checks the damping factor and iteration controls.
func (p PageRankParams) Validate() error {
	if p.Alpha < 0 || p.Alpha >= 1 {
		return fmt.Errorf("core: pagerank alpha %v out of [0,1)", p.Alpha)
	}
	if p.Tol < 0 {
		return fmt.Errorf("core: negative tolerance %v", p.Tol)
	}
	if p.MaxIter < 0 {
		return fmt.Errorf("core: negative MaxIter %d", p.MaxIter)
	}
	return nil
}

func (p PageRankParams) tol() float64 {
	if p.Tol == 0 {
		return DefaultTol
	}
	return p.Tol
}

func (p PageRankParams) maxIter() int {
	if p.MaxIter == 0 {
		return DefaultPageRankMaxIter
	}
	return p.MaxIter
}

// PageRank computes classic random-walk-with-uniform-jumps scores (Eq. 1
// of the paper) on the compiled operator, reusing the CSC matrix, the
// tiled CSR layout, the relabeling and the worker pool that AttRank
// ranks already paid for. The recurrence is the α+β+γ=1 AttRank limit
// with the whole jump mass uniform:
//
//	PR = α·S·PR + (1−α)/n
//
// Serial (Workers == 0) iterates are bit-identical to
// baselines.PageRank: the combine is the same two-operation update
// (α·(Sx)[i] + jump) on the same column-stochastic MulVec. The parallel
// path feeds the tiled kernel β=0, γ=1 with a constant jump vector —
// 0·A contributes exact zeros and 1·T multiplies exactly, so its
// iterates are bit-identical to the serial ones (the tiled kernel
// accumulates in canonical column order; see sparse.TiledStochastic).
// Note the jump vector holds (1−α)/n per entry, NOT a normalized
// uniform vector scaled by (1−α): (1−α)·(1/n) and (1−α)/n can differ
// in the last ulp, and bit-equality with the baselines reference is the
// contract here.
//
// Like Rank, a budget exhaustion is reported via Result.Converged =
// false rather than an error, so callers can still use the final
// iterate. The residual is an L1 tree-reduction over partitions on the
// parallel path, so — exactly as for AttRank — the iteration count is
// deterministic for a fixed Workers value but may differ across
// partition counts in the last ulp of the stopping test.
func (op *Operator) PageRank(p PageRankParams) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := op.net.N()
	if n == 0 {
		return nil, ErrEmptyNetwork
	}
	started := time.Now()

	jump := (1 - p.Alpha) / float64(n)
	jumpVec := make([]float64, n)
	for i := range jumpVec {
		jumpVec[i] = jump
	}

	res := &Result{}
	x := sparse.Uniform(n)
	next := make([]float64, n)
	tol := p.tol()

	if p.Workers == 0 {
		s, err := op.stochastic()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			s.MulVec(next, x)
			for i := range next {
				next[i] = p.Alpha*next[i] + jump
			}
			resid := sparse.L1Diff(next, x)
			res.Residuals = append(res.Residuals, resid)
			x, next = next, x
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
	} else {
		ti, release, err := op.acquireTiled()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		perm := op.perm
		// A constant vector is its own permutation, so the jump vector
		// crosses the relabeling boundary unchanged; the uniform start
		// does too. Only the scores cross back.
		xp := next
		copy(xp, x)
		nextP := make([]float64, n)
		parts := p.Workers
		if parts < 0 {
			parts = runtime.GOMAXPROCS(0)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			resid := ti.Step(nextP, xp, jumpVec, jumpVec, p.Alpha, 0, 1, parts)
			res.Residuals = append(res.Residuals, resid)
			xp, nextP = nextP, xp
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
		release()
		for i := range x {
			x[i] = xp[perm[i]]
		}
	}
	res.Scores = x
	res.Duration = time.Since(started)
	return res, nil
}
