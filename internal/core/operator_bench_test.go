package core

import (
	"sync"
	"testing"

	"attrank/internal/graph"
	"attrank/internal/sparse"
	"attrank/internal/synth"
)

// benchNet lazily generates a ~100k-paper synthetic power-law citation
// network (the DBLP profile scaled ×5) shared by the benchmarks below.
var benchNet = struct {
	once sync.Once
	net  *graph.Network
	err  error
}{}

func bench100k(b *testing.B) *graph.Network {
	b.Helper()
	benchNet.once.Do(func() {
		benchNet.net, benchNet.err = synth.Generate(synth.DBLP().Scale(5))
	})
	if benchNet.err != nil {
		b.Fatal(benchNet.err)
	}
	return benchNet.net
}

func benchState(b *testing.B) (*sparse.Stochastic, []float64, []float64, []float64, []float64) {
	net := bench100k(b)
	s, err := net.StochasticMatrix()
	if err != nil {
		b.Fatal(err)
	}
	n := net.N()
	att := AttentionVector(net, net.MaxYear(), 3)
	rec := RecencyVector(net, net.MaxYear(), -0.16)
	return s, sparse.Uniform(n), make([]float64, n), att, rec
}

// BenchmarkIteration100kLegacy measures one power-method step the way the
// pre-operator code ran it with Workers: −1: a parallel SpMV that spawns
// goroutines per call, then three more full-vector sweeps (dangling add is
// inside MulVec, combine, residual). The matrix conversion is hoisted out,
// which flatters the legacy path — the old code also re-converted CSC→CSR
// on every Rank call.
func BenchmarkIteration100kLegacy(b *testing.B) {
	s, x, next, att, rec := benchState(b)
	p := s.Parallel(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulVec(next, x)
		for j := range next {
			next[j] = 0.5*next[j] + 0.3*att[j] + 0.2*rec[j]
		}
		_ = sparse.L1Diff(next, x)
	}
}

// BenchmarkIteration100kFused measures the same step through the fused
// kernel on a persistent pool: one sweep, no goroutine churn.
func BenchmarkIteration100kFused(b *testing.B) {
	s, x, next, att, rec := benchState(b)
	pool := sparse.NewPool(0)
	defer pool.Close()
	f := s.Fused(pool)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step(next, x, att, rec, 0.5, 0.3, 0.2, pool.Size())
	}
}

// BenchmarkIteration100kSerialReference is the serial CSC baseline, for
// placing the fused numbers against the reference kernel.
func BenchmarkIteration100kSerialReference(b *testing.B) {
	s, x, next, att, rec := benchState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulVec(next, x)
		for j := range next {
			next[j] = 0.5*next[j] + 0.3*att[j] + 0.2*rec[j]
		}
		_ = sparse.L1Diff(next, x)
	}
}

// BenchmarkRank100kWarmOperator measures a full re-rank through a compiled
// operator (matrix state and pool reused, warm-started from the previous
// scores) — the live-ingestion steady state.
func BenchmarkRank100kWarmOperator(b *testing.B) {
	net := bench100k(b)
	op := Compile(net)
	p := Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: -1}
	res, err := op.Rank(net.MaxYear(), p)
	if err != nil {
		b.Fatal(err)
	}
	p.Start = res.Scores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Rank(net.MaxYear(), p); err != nil {
			b.Fatal(err)
		}
	}
}
