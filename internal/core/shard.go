package core

import (
	"sync"

	"attrank/internal/obs"
	"attrank/internal/sparse"
)

// The sharded-ranking seam (DESIGN.md §16). core knows nothing about the
// exchange wire protocol; it exposes an interface a deployment driver
// (internal/shard) implements and a process-wide provider hook the
// command layer wires up. When a provider is installed, parallel Ranks
// run their power iterations through the stepper — each shard holding
// one row block of the tiled layout — and any failure falls back to the
// local kernel, which is bit-identical at equal partition counts, so a
// dying shard costs availability of nothing and latency of one rank.

// ShardStepper drives one warm-startable power-iteration chain on a
// sharded deployment. All vectors are in the tiled layout's storage
// (permuted) space. The contract mirrors the local loop exactly:
// BeginRank establishes the start iterate and the epoch's attention and
// recency vectors; each StepRank advances one fused step, filling next
// and returning the tree-reduced L1 residual; EndRank closes the chain.
// x passed to StepRank must be the next of the previous step (or the
// BeginRank iterate for the first) — shards double-buffer their own
// segments and only boundary windows cross the wire.
type ShardStepper interface {
	BeginRank(x, att, rec []float64, alpha, beta, gamma float64) error
	StepRank(next, x []float64) (float64, error)
	EndRank()
}

// ShardProvider builds (or reuses) a stepper for an operator — typically
// by shipping the operator's row blocks to shard peers. A provider is
// process-wide: SetShardProvider installs it once at startup.
type ShardProvider func(op *Operator) (ShardStepper, error)

var (
	shardProvMu sync.RWMutex
	shardProv   ShardProvider
)

// SetShardProvider installs the process-wide shard provider (nil
// disables sharded ranking). Intended for startup wiring and tests.
func SetShardProvider(p ShardProvider) {
	shardProvMu.Lock()
	shardProv = p
	shardProvMu.Unlock()
}

func shardProvider() ShardProvider {
	shardProvMu.RLock()
	p := shardProv
	shardProvMu.RUnlock()
	return p
}

var mShardFallbacks = obs.NewCounter("attrank_core_shard_fallbacks_total",
	"Parallel ranks that fell back to the local kernel after a sharded deployment or step failed.")

// ShardFallbacks reports how many ranks have fallen back from a sharded
// deployment to the local kernel since process start. Diagnostic hook
// for the failure-path tests; operators watch the counter metric.
func ShardFallbacks() int64 { return mShardFallbacks.Value() }

// TiledKernel compiles (on first use) and returns the operator's tiled
// kernel plus a release handle for the in-flight accounting, exactly as
// the parallel Rank path acquires it. Deployment drivers use it to
// extract shard blocks and the partition plan. The kernel's pure layout
// accessors (ShardBounds, ExtractBlock, DanglingShare, PremultiplyY)
// remain valid after release; only Step with parts > 1 needs the pool.
func (op *Operator) TiledKernel() (*sparse.TiledStochastic, func(), error) {
	return op.acquireTiled()
}

// stepperFor returns the cached stepper for this operator, asking the
// provider on first use. The stepper cache has its own lock: providers
// call back into op.TiledKernel (which takes op.mu), and eviction holds
// op.mu, so guarding the stepper with op.mu would deadlock or order
// locks ABBA. A nil, nil return means sharding is not configured.
func (op *Operator) stepperFor() (ShardStepper, error) {
	prov := shardProvider()
	if prov == nil {
		return nil, nil
	}
	op.shardMu.Lock()
	defer op.shardMu.Unlock()
	if op.stepper != nil {
		return op.stepper, nil
	}
	st, err := prov(op)
	if err != nil {
		return nil, err
	}
	op.stepper = st
	return st, nil
}

// dropStepper forgets a failed stepper so the next rank redeploys
// through the provider (shards that restarted bootstrap fresh state).
func (op *Operator) dropStepper(st ShardStepper) {
	op.shardMu.Lock()
	if op.stepper == st {
		op.stepper = nil
	}
	op.shardMu.Unlock()
}

// rankSharded runs the power-iteration chain through the stepper,
// operating on private copies so a mid-chain shard failure leaves the
// caller's iterate untouched for the local retry. On success it returns
// the converged permuted iterate and true; on any failure it restores
// res to its pre-chain state, counts the fallback, and returns false.
func (op *Operator) rankSharded(res *Result, xp, attP, recP []float64, p Params, tol float64) ([]float64, bool) {
	st, err := op.stepperFor()
	if err != nil {
		mShardFallbacks.Inc()
		return nil, false
	}
	if st == nil {
		return nil, false
	}
	n := len(xp)
	x := make([]float64, n)
	copy(x, xp)
	next := make([]float64, n)
	if err := st.BeginRank(x, attP, recP, p.Alpha, p.Beta, p.Gamma); err != nil {
		op.dropStepper(st)
		mShardFallbacks.Inc()
		return nil, false
	}
	defer st.EndRank()
	for iter := 1; iter <= p.maxIter(); iter++ {
		resid, err := st.StepRank(next, x)
		if err != nil {
			op.dropStepper(st)
			mShardFallbacks.Inc()
			res.Residuals = res.Residuals[:0]
			res.Iterations = 0
			res.Converged = false
			return nil, false
		}
		res.Residuals = append(res.Residuals, resid)
		mIterationResidual.Observe(resid)
		x, next = next, x
		res.Iterations = iter
		if resid < tol {
			res.Converged = true
			break
		}
	}
	return x, true
}
