package core

import (
	"fmt"
	"sort"

	"attrank/internal/graph"
)

// Explanation decomposes one paper's converged AttRank score into the
// contributions of the three mechanisms of Eq. 4 — useful for auditing
// why a paper ranks where it does.
//
// At the fixed point, AR(p) = α·Σ_j S[p,j]·AR(j) + β·A(p) + γ·T(p), so
// the three addends partition the score exactly:
// Flow + Attention + Recency = Score (up to convergence tolerance).
type Explanation struct {
	// Paper is the explained node.
	Paper int32
	// Score is the converged AttRank score.
	Score float64
	// Flow is the α-weighted mass arriving through reference lists
	// (including this paper's share of dangling mass).
	Flow float64
	// Attention is β·A(p), the recent-citation mechanism's contribution.
	Attention float64
	// Recency is γ·T(p), the publication-age mechanism's contribution.
	Recency float64
	// TopCiters lists the citing papers contributing the most flow,
	// largest first (at most 5).
	TopCiters []CiterContribution
}

// CiterContribution is one citing paper's share of the flow term.
type CiterContribution struct {
	Citer int32
	// Mass is α·S[p,citer]·AR(citer).
	Mass float64
}

// String renders the decomposition compactly.
func (e Explanation) String() string {
	pct := func(v float64) float64 {
		if e.Score == 0 {
			return 0
		}
		return 100 * v / e.Score
	}
	return fmt.Sprintf("score=%.3e flow=%.1f%% attention=%.1f%% recency=%.1f%%",
		e.Score, pct(e.Flow), pct(e.Attention), pct(e.Recency))
}

// Explain decomposes the score of paper i from a converged Result. The
// Result must come from Rank on the same network, time and parameters.
func Explain(net *graph.Network, res *Result, p Params, i int32) (Explanation, error) {
	if err := p.Validate(); err != nil {
		return Explanation{}, err
	}
	if res == nil || len(res.Scores) != net.N() {
		return Explanation{}, fmt.Errorf("core: explain: result does not match network (%d scores, %d papers)",
			resultLen(res), net.N())
	}
	if i < 0 || int(i) >= net.N() {
		return Explanation{}, fmt.Errorf("core: explain: paper index %d out of range", i)
	}
	e := Explanation{
		Paper:     i,
		Score:     res.Scores[i],
		Attention: p.Beta * res.Attention[i],
		Recency:   p.Gamma * res.Recency[i],
	}

	// Flow: α·Σ over citers of AR(citer)/outdeg(citer), plus the uniform
	// share of dangling mass.
	if p.Alpha > 0 {
		var citers []CiterContribution
		net.Citers(i, func(c int32) {
			if d := net.OutDegree(c); d > 0 {
				citers = append(citers, CiterContribution{
					Citer: c,
					Mass:  p.Alpha * res.Scores[c] / float64(d),
				})
			}
		})
		danglingMass := 0.0
		for j := int32(0); int(j) < net.N(); j++ {
			if net.OutDegree(j) == 0 {
				danglingMass += res.Scores[j]
			}
		}
		e.Flow = p.Alpha * danglingMass / float64(net.N())
		for _, c := range citers {
			e.Flow += c.Mass
		}
		sort.Slice(citers, func(a, b int) bool { return citers[a].Mass > citers[b].Mass })
		if len(citers) > 5 {
			citers = citers[:5]
		}
		e.TopCiters = citers
	}
	return e, nil
}

func resultLen(res *Result) int {
	if res == nil {
		return 0
	}
	return len(res.Scores)
}
