package core

import (
	"math"
	"testing"
)

func TestWarmStartSameFixedPoint(t *testing.T) {
	n := randomNet(t, 11, 150)
	p := Params{Alpha: 0.4, Beta: 0.3, Gamma: 0.3, AttentionYears: 3, W: -0.2}
	cold, err := Rank(n, n.MaxYear(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a biased (but valid) vector: same fixed point.
	start := make([]float64, n.N())
	for i := range start {
		start[i] = float64(i + 1)
	}
	p.Start = start
	warm, err := Rank(n, n.MaxYear(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Scores {
		if math.Abs(cold.Scores[i]-warm.Scores[i]) > 1e-9 {
			t.Fatalf("fixed point depends on start at %d: %v vs %v", i, cold.Scores[i], warm.Scores[i])
		}
	}
}

func TestWarmStartFewerIterations(t *testing.T) {
	n := randomNet(t, 23, 300)
	p := Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.2}
	cold, err := Rank(n, n.MaxYear(), p)
	if err != nil {
		t.Fatal(err)
	}
	// Restarting from the converged vector must converge almost
	// immediately.
	p.Start = cold.Scores
	warm, err := Rank(n, n.MaxYear(), p)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > 3 {
		t.Errorf("warm restart took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
}

func TestWarmStartValidation(t *testing.T) {
	n := testNet(t)
	p := Params{Alpha: 0.4, Beta: 0.3, Gamma: 0.3, AttentionYears: 3, W: -0.2}
	p.Start = []float64{1, 2} // wrong length
	if _, err := Rank(n, 1998, p); err == nil {
		t.Error("wrong-length warm start accepted")
	}
	p.Start = make([]float64, n.N())
	p.Start[0] = -1
	if _, err := Rank(n, 1998, p); err == nil {
		t.Error("negative warm start accepted")
	}
	p.Start = make([]float64, n.N())
	p.Start[0] = math.NaN()
	if _, err := Rank(n, 1998, p); err == nil {
		t.Error("NaN warm start accepted")
	}
}

func TestWarmStartZeroVectorFallsBackToUniform(t *testing.T) {
	n := testNet(t)
	p := Params{Alpha: 0.4, Beta: 0.3, Gamma: 0.3, AttentionYears: 3, W: -0.2}
	p.Start = make([]float64, n.N()) // all zeros → Normalize → uniform
	res, err := Rank(n, 1998, p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero warm start should behave like a cold start")
	}
}
