package core

import (
	"fmt"
	"time"

	"attrank/internal/obs"
)

// The core metric catalogue (see DESIGN.md §9): convergence behaviour
// of the power method (Theorem 1 observed in production rather than
// assumed), compilation churn of the operator cache, and rank latency
// split by warm vs cold start.
var (
	mRankIterations = obs.NewHistogram("attrank_core_rank_iterations",
		"Power-method iterations per Rank call (warm starts converge in few).",
		obs.ExpBuckets(1, 2, 9))
	mIterationResidual = obs.NewHistogram("attrank_core_iteration_residual",
		"L1 residual after each power iteration (the per-iteration convergence signal).",
		obs.ExpBuckets(1e-14, 10, 15))
	mFinalResidual = obs.NewGauge("attrank_core_rank_final_residual",
		"L1 residual of the most recently completed Rank.")
	mKernelCompiles = obs.NewCounter("attrank_core_kernel_compiles_total",
		"Citation-matrix normalizations into ranking-operator form (cache misses).")
	mRankSeconds = obs.NewHistogramVec("attrank_core_rank_seconds",
		"Full Rank wall time, labeled by start=cold (uniform start) or start=warm.",
		obs.ExpBuckets(1e-4, 2, 20), "start")
	mRanksTotal = obs.NewCounterVec("attrank_core_ranks_total",
		"Completed Rank calls by convergence outcome.", "converged")
	mVectorEvictions = obs.NewCounter("attrank_core_vector_cache_evictions_total",
		"Single-entry LRU evictions from the attention/recency vector caches.")

	// Layout telemetry for the cache-aware tiled kernel (DESIGN.md §13):
	// bytes the hot loop moves per nonzero, the tile population, and the
	// one-off relabeling cost, so the bandwidth budget is visible in
	// /metrics next to the rank latencies it buys.
	mLayoutBytesPerNNZ = obs.NewGauge("attrank_core_layout_bytes_per_nnz",
		"Total tiled-layout footprint (values + compressed indices + headers) per nonzero.")
	mLayoutTiles = obs.NewGauge("attrank_core_layout_tiles",
		"Row-block tiles in the compiled layout.")
	mLayoutWindows = obs.NewGauge("attrank_core_layout_windows",
		"64Ki column windows in the compiled layout (one uint16 word per entry, window-local).")
	mLayoutOccupancy = obs.NewGauge("attrank_core_layout_row_occupancy",
		"Fraction of matrix rows holding at least one nonzero.")
	mLayoutRelabelSeconds = obs.NewGauge("attrank_core_layout_relabel_seconds",
		"Wall time of the RCM relabeling pass in the last kernel compile.")
	mLayoutCompileSeconds = obs.NewGauge("attrank_core_layout_compile_seconds",
		"Wall time of the whole (concurrent) kernel compile pipeline.")
)

// observeLayout publishes the compile pipeline's layout statistics.
func observeLayout(cs CompileStats) {
	mLayoutBytesPerNNZ.Set(cs.Layout.BytesPerNNZ)
	mLayoutTiles.Set(float64(cs.Layout.Tiles))
	mLayoutWindows.Set(float64(cs.Layout.Windows))
	mLayoutOccupancy.Set(cs.Layout.Occupancy)
	mLayoutRelabelSeconds.Set(float64(cs.RelabelNS) / 1e9)
	mLayoutCompileSeconds.Set(float64(cs.WallNS) / 1e9)
}

// startLabel renders the warm/cold label for mRankSeconds.
func startLabel(warm bool) string {
	if warm {
		return "warm"
	}
	return "cold"
}

// convergedLabel renders the outcome label for mRanksTotal.
func convergedLabel(ok bool) string {
	if ok {
		return "true"
	}
	return "false"
}

// TelemetryLine summarizes this process's ranking telemetry in one line,
// for CLI output after a rank. Counts are process-wide: a single-shot
// CLI run reports exactly its own work.
func TelemetryLine() string {
	ranks := mRankIterations.Count()
	iters := mRankIterations.Sum()
	dur := mRankSeconds.With("cold").Sum() + mRankSeconds.With("warm").Sum()
	return fmt.Sprintf("telemetry: ranks=%d iterations=%.0f kernel_compiles=%d final_residual=%.3e rank_time=%s",
		ranks, iters, mKernelCompiles.Value(), mFinalResidual.Value(),
		time.Duration(dur*float64(time.Second)).Round(time.Microsecond))
}
