package core

import (
	"runtime"
	"testing"

	"attrank/internal/graph"
)

func workerCounts() []int {
	return []int{-1, 1, 2, 7, runtime.GOMAXPROCS(0)}
}

// assertBitIdentical runs Rank at every worker count and requires the
// scores to equal the serial kernel's bit for bit (==, not within an
// epsilon): the fused kernel mirrors the serial arithmetic exactly.
func assertBitIdentical(t *testing.T, n *graph.Network, base Params) {
	t.Helper()
	serial, err := Rank(n, n.MaxYear(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts() {
		p := base
		p.Workers = workers
		par, err := Rank(n, n.MaxYear(), p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Iterations != serial.Iterations {
			t.Errorf("workers=%d: %d iterations vs serial %d", workers, par.Iterations, serial.Iterations)
		}
		if par.Converged != serial.Converged {
			t.Errorf("workers=%d: converged=%v vs serial %v", workers, par.Converged, serial.Converged)
		}
		for i := range serial.Scores {
			if par.Scores[i] != serial.Scores[i] {
				t.Fatalf("workers=%d: score %d not bit-identical: %v vs %v",
					workers, i, par.Scores[i], serial.Scores[i])
			}
		}
	}
}

func TestRankParallelMatchesSerial(t *testing.T) {
	n := randomNet(t, 31, 500)
	assertBitIdentical(t, n, Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.2})
}

// danglingNet builds a network where the overwhelming majority of papers
// cite nothing: almost every column of S is dangling, so the fused
// kernel's sequential dangling-mass gather dominates the iteration.
func danglingNet(t testing.TB, size int) *graph.Network {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < size; i++ {
		if _, err := b.AddPaper(paperID(i), 1990+i/7, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	// Only every 25th paper has references; the rest are dangling.
	for i := 25; i < size; i += 25 {
		b.AddEdgeByIndex(int32(i), int32(i-25))
		b.AddEdgeByIndex(int32(i), int32(i/2))
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRankParallelDanglingHeavy(t *testing.T) {
	assertBitIdentical(t, danglingNet(t, 400),
		Params{Alpha: 0.4, Beta: 0.4, Gamma: 0.2, AttentionYears: 4, W: -0.1})
}

func TestRankParallelWarmStart(t *testing.T) {
	n := randomNet(t, 47, 300)
	base := Params{Alpha: 0.3, Beta: 0.4, Gamma: 0.3, AttentionYears: 3, W: -0.15}
	first, err := Rank(n, n.MaxYear(), base)
	if err != nil {
		t.Fatal(err)
	}
	base.Start = first.Scores
	assertBitIdentical(t, n, base)
}

func TestRankParallelAlphaZeroFastPath(t *testing.T) {
	n := randomNet(t, 53, 200)
	for _, workers := range workerCounts() {
		p := Params{Alpha: 0, Beta: 0.6, Gamma: 0.4, AttentionYears: 3, W: -0.2, Workers: workers}
		res, err := Rank(n, n.MaxYear(), p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// α = 0 short-circuits to a single direct evaluation regardless of
		// the kernel selection; no matrix is ever touched.
		if res.Iterations != 1 || !res.Converged {
			t.Fatalf("workers=%d: iterations=%d converged=%v, want 1/true",
				workers, res.Iterations, res.Converged)
		}
		for i := range res.Scores {
			want := 0.6*res.Attention[i] + 0.4*res.Recency[i]
			if res.Scores[i] != want {
				t.Fatalf("workers=%d: score %d = %v, want %v", workers, i, res.Scores[i], want)
			}
		}
	}
}
