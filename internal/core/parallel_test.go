package core

import (
	"math"
	"testing"
)

func TestRankParallelMatchesSerial(t *testing.T) {
	n := randomNet(t, 31, 500)
	base := Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.2}
	serial, err := Rank(n, n.MaxYear(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 1, 2, 7} {
		p := base
		p.Workers = workers
		par, err := Rank(n, n.MaxYear(), p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Iterations != serial.Iterations {
			t.Errorf("workers=%d: %d iterations vs serial %d", workers, par.Iterations, serial.Iterations)
		}
		for i := range serial.Scores {
			if math.Abs(serial.Scores[i]-par.Scores[i]) > 1e-12 {
				t.Fatalf("workers=%d: score %d differs: %v vs %v",
					workers, i, par.Scores[i], serial.Scores[i])
			}
		}
	}
}
