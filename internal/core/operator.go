package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"attrank/internal/graph"
	"attrank/internal/sparse"
)

// Operator is the compiled form of AttRank over one immutable network: it
// owns the normalized citation matrix (CSC), the CSR mirror with its
// nnz-balanced row partition, a persistent worker pool, and small caches
// of the attention and recency vectors. Compile once, then call Rank as
// many times as needed — across power iterations, across warm-started
// re-ranks of a live corpus, and across the cells of a parameter sweep —
// without ever rebuilding matrix state.
//
// Everything heavy is built lazily on first use: an operator compiled for
// a network that is only ever ranked with α = 0 never assembles a matrix,
// and the CSR mirror plus worker pool exist only once a parallel rank
// (Params.Workers ≠ 0) runs. All methods are safe for concurrent use;
// concurrent Rank calls share the matrix read-only and the pool
// interleaves their row-range tasks.
type Operator struct {
	net *graph.Network

	mu    sync.Mutex // guards the lazy state below
	stoch *sparse.Stochastic
	fused *sparse.FusedStochastic
	pool  *sparse.Pool
	att   map[attKey][]float64
	rec   map[recKey][]float64
}

type attKey struct{ now, years int }

type recKey struct {
	now int
	w   float64
}

// vectorCacheCap bounds the attention/recency caches; a sweep revisits a
// handful of (now, y) and (now, w) combinations, so a small cap suffices
// and keeps a long-lived operator from accumulating vectors.
const vectorCacheCap = 16

// kernelCompiles counts stochastic-matrix compilations process-wide; with
// sparse.CSRConversions it backs the compile-once regression tests.
var kernelCompiles atomic.Int64

// KernelCompiles reports how many times this process normalized a
// citation matrix into ranking-operator form. Diagnostic hook for tests.
func KernelCompiles() int64 { return kernelCompiles.Load() }

// Compile returns a fresh operator for the network. Matrix state is built
// lazily, so this is cheap; use OperatorFor to share compiled operators
// across Rank calls.
func Compile(net *graph.Network) *Operator {
	return &Operator{
		net: net,
		att: make(map[attKey][]float64),
		rec: make(map[recKey][]float64),
	}
}

// operatorCacheSize bounds the process-wide operator cache. Each entry
// pins its network plus up to two copies of the matrix (CSC + CSR), so
// the cache is deliberately small: big enough for a live service (one
// corpus), a sweep (one split), and the tests' churn, without keeping
// every historical epoch alive.
const operatorCacheSize = 4

var (
	opCacheMu sync.Mutex
	opCache   []*Operator // most recently used first
)

// OperatorFor returns the cached operator for the network, compiling one
// on first sight. Networks are immutable and compared by identity, so a
// re-rank of the same *graph.Network — the ingest debounce loop between
// compactions, every cell of a parameter sweep, repeated API calls —
// reuses the compiled matrix state instead of rebuilding it. Evicted
// operators release their worker pools through a finalizer.
func OperatorFor(net *graph.Network) *Operator {
	opCacheMu.Lock()
	defer opCacheMu.Unlock()
	for i, op := range opCache {
		if op.net == net {
			if i > 0 {
				copy(opCache[1:i+1], opCache[:i])
				opCache[0] = op
			}
			return op
		}
	}
	op := Compile(net)
	if len(opCache) < operatorCacheSize {
		opCache = append(opCache, nil)
	}
	copy(opCache[1:], opCache)
	opCache[0] = op
	return op
}

// Network returns the network this operator was compiled from.
func (op *Operator) Network() *graph.Network { return op.net }

// Close releases the worker pool. Subsequent parallel Ranks recompile it;
// Close must not race with an in-flight Rank. Operators dropped without
// Close are cleaned up by the pool's finalizer.
func (op *Operator) Close() {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.pool != nil {
		op.pool.Close()
		op.pool = nil
		op.fused = nil
	}
}

// stochastic returns the column-stochastic matrix, compiling it on first
// use.
func (op *Operator) stochastic() (*sparse.Stochastic, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.stochasticLocked()
}

func (op *Operator) stochasticLocked() (*sparse.Stochastic, error) {
	if op.stoch == nil {
		s, err := op.net.StochasticMatrix()
		if err != nil {
			return nil, err
		}
		op.stoch = s
		kernelCompiles.Add(1)
	}
	return op.stoch, nil
}

// fusedKernel returns the fused CSR kernel and its pool, compiling both on
// first use.
func (op *Operator) fusedKernel() (*sparse.FusedStochastic, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.fused == nil {
		s, err := op.stochasticLocked()
		if err != nil {
			return nil, err
		}
		if op.pool == nil {
			op.pool = sparse.NewPool(0)
		}
		op.fused = s.Fused(op.pool)
	}
	return op.fused, nil
}

// attention returns a private copy of the attention vector A(now, y),
// serving repeats from the cache (callers receive copies because Result
// exposes the vector for mutation-free diagnostics).
func (op *Operator) attention(now, years int) []float64 {
	key := attKey{now: now, years: years}
	op.mu.Lock()
	v, ok := op.att[key]
	if !ok {
		v = AttentionVector(op.net, now, years)
		if len(op.att) >= vectorCacheCap {
			clear(op.att)
		}
		op.att[key] = v
	}
	op.mu.Unlock()
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// recency returns a private copy of the recency vector T(now, w), cached
// like attention.
func (op *Operator) recency(now int, w float64) []float64 {
	key := recKey{now: now, w: w}
	op.mu.Lock()
	v, ok := op.rec[key]
	if !ok {
		v = RecencyVector(op.net, now, w)
		if len(op.rec) >= vectorCacheCap {
			clear(op.rec)
		}
		op.rec[key] = v
	}
	op.mu.Unlock()
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Rank computes AttRank scores at time now with the given parameters,
// reusing every compiled piece of the operator. Params.Workers selects
// the kernel exactly as in the package-level Rank: 0 runs the serial CSC
// reference kernel, any other value the fused parallel kernel.
func (op *Operator) Rank(now int, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := op.net.N()
	if n == 0 {
		return nil, ErrEmptyNetwork
	}
	started := time.Now()

	att := op.attention(now, p.AttentionYears)
	rec := op.recency(now, p.W)

	res := &Result{Attention: att, Recency: rec}
	if p.Alpha == 0 {
		// Limit case discussed in §4.4: a single evaluation suffices.
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = p.Beta*att[i] + p.Gamma*rec[i]
		}
		res.Scores = scores
		res.Iterations = 1
		res.Converged = true
		res.Residuals = []float64{0}
		res.Duration = time.Since(started)
		return res, nil
	}

	var x []float64
	if p.Start != nil {
		if len(p.Start) != n {
			return nil, fmt.Errorf("core: warm start has %d entries for %d papers", len(p.Start), n)
		}
		x = make([]float64, n)
		copy(x, p.Start)
		for i, v := range x {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("core: warm start entry %d is %v", i, v)
			}
		}
		sparse.Normalize(x)
	} else {
		x = sparse.Uniform(n)
	}
	next := make([]float64, n)
	tol := p.tol()

	if p.Workers == 0 {
		// Serial CSC reference kernel: the bit-level ground truth the
		// fused kernel is tested against.
		s, err := op.stochastic()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			s.MulVec(next, x)
			for i := range next {
				next[i] = p.Alpha*next[i] + p.Beta*att[i] + p.Gamma*rec[i]
			}
			resid := sparse.L1Diff(next, x)
			res.Residuals = append(res.Residuals, resid)
			x, next = next, x
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
	} else {
		f, err := op.fusedKernel()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		parts := p.Workers
		if parts < 0 {
			parts = runtime.GOMAXPROCS(0)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			resid := f.Step(next, x, att, rec, p.Alpha, p.Beta, p.Gamma, parts)
			res.Residuals = append(res.Residuals, resid)
			x, next = next, x
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
	}
	res.Scores = x
	res.Duration = time.Since(started)
	return res, nil
}
