package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"attrank/internal/graph"
	"attrank/internal/sparse"
)

// Operator is the compiled form of AttRank over one immutable network: it
// owns the normalized citation matrix (CSC), the CSR mirror with its
// nnz-balanced row partition, a persistent worker pool, and small caches
// of the attention and recency vectors. Compile once, then call Rank as
// many times as needed — across power iterations, across warm-started
// re-ranks of a live corpus, and across the cells of a parameter sweep —
// without ever rebuilding matrix state.
//
// Everything heavy is built lazily on first use: an operator compiled for
// a network that is only ever ranked with α = 0 never assembles a matrix,
// and the CSR mirror plus worker pool exist only once a parallel rank
// (Params.Workers ≠ 0) runs. All methods are safe for concurrent use;
// concurrent Rank calls share the matrix read-only and the pool
// interleaves their row-range tasks.
type Operator struct {
	net *graph.Network

	mu    sync.Mutex // guards the lazy state below
	stoch *sparse.Stochastic
	fused *sparse.FusedStochastic
	multi *sparse.FusedStochasticMulti
	pool  *sparse.Pool
	att   vecCache[attKey]
	rec   vecCache[recKey]

	// inflight counts parallel Ranks currently stepping on the pool;
	// evicted marks an operator dropped from the OperatorFor cache. The
	// pair lets eviction close the pool deterministically the moment it
	// goes idle, instead of waiting for the finalizer.
	inflight int
	evicted  bool
}

type attKey struct{ now, years int }

type recKey struct {
	now int
	w   float64
}

// vectorCacheCap bounds the attention/recency caches; a sweep revisits a
// handful of (now, y) and (now, w) combinations, so a small cap suffices
// and keeps a long-lived operator from accumulating vectors.
const vectorCacheCap = 16

// vecCache is a tiny LRU of computed vectors. Capacity overflow evicts
// exactly one entry — the least recently used — so the vector a caller
// is hammering always survives a sweep over many one-off keys. (The old
// policy cleared the whole map, which made an alternating hot-key/sweep
// pattern recompute the hot vector on every call.) Callers synchronize
// through the operator's mutex.
type vecCache[K comparable] struct {
	entries map[K]*vecEntry
	clock   int64
}

type vecEntry struct {
	v    []float64
	used int64
}

// get returns the cached vector and bumps its recency.
func (c *vecCache[K]) get(k K) ([]float64, bool) {
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.clock++
	e.used = c.clock
	return e.v, true
}

// put inserts a vector, evicting the single least-recently-used entry
// if the cache is full. The O(cap) scan is irrelevant next to the
// O(N) vector computation that preceded every put.
func (c *vecCache[K]) put(k K, v []float64) {
	if c.entries == nil {
		c.entries = make(map[K]*vecEntry)
	}
	if len(c.entries) >= vectorCacheCap {
		var (
			lruKey K
			lru    *vecEntry
		)
		for key, e := range c.entries {
			if lru == nil || e.used < lru.used {
				lruKey, lru = key, e
			}
		}
		delete(c.entries, lruKey)
		mVectorEvictions.Inc()
	}
	c.clock++
	c.entries[k] = &vecEntry{v: v, used: c.clock}
}

// kernelCompiles counts stochastic-matrix compilations process-wide; with
// sparse.CSRConversions it backs the compile-once regression tests.
var kernelCompiles atomic.Int64

// vectorComputes counts attention/recency vector computations (cache
// misses) process-wide. Diagnostic hook for the cache-eviction tests.
var vectorComputes atomic.Int64

// KernelCompiles reports how many times this process normalized a
// citation matrix into ranking-operator form. Diagnostic hook for tests.
func KernelCompiles() int64 { return kernelCompiles.Load() }

// Compile returns a fresh operator for the network. Matrix state is built
// lazily, so this is cheap; use OperatorFor to share compiled operators
// across Rank calls.
func Compile(net *graph.Network) *Operator {
	return &Operator{net: net}
}

// operatorCacheSize bounds the process-wide operator cache. Each entry
// pins its network plus up to two copies of the matrix (CSC + CSR), so
// the cache is deliberately small: big enough for a live service (one
// corpus), a sweep (one split), and the tests' churn, without keeping
// every historical epoch alive.
const operatorCacheSize = 4

var (
	opCacheMu sync.Mutex
	opCache   []*Operator // most recently used first
)

// OperatorFor returns the cached operator for the network, compiling one
// on first sight. Networks are immutable and compared by identity, so a
// re-rank of the same *graph.Network — the ingest debounce loop between
// compactions, every cell of a parameter sweep, repeated API calls —
// reuses the compiled matrix state instead of rebuilding it. An evicted
// operator closes its worker pool as soon as no rank is using it (the
// pool finalizer remains as the backstop for operators dropped without
// ever entering the cache).
func OperatorFor(net *graph.Network) *Operator {
	opCacheMu.Lock()
	for i, op := range opCache {
		if op.net == net {
			if i > 0 {
				copy(opCache[1:i+1], opCache[:i])
				opCache[0] = op
			}
			opCacheMu.Unlock()
			return op
		}
	}
	op := Compile(net)
	var dropped *Operator
	if len(opCache) < operatorCacheSize {
		opCache = append(opCache, nil)
	} else {
		dropped = opCache[len(opCache)-1]
	}
	copy(opCache[1:], opCache)
	opCache[0] = op
	opCacheMu.Unlock()
	if dropped != nil {
		dropped.markEvicted()
	}
	return op
}

// Network returns the network this operator was compiled from.
func (op *Operator) Network() *graph.Network { return op.net }

// Close releases the worker pool. Subsequent parallel Ranks recompile it;
// Close must not race with an in-flight Rank. Operators dropped without
// Close are cleaned up by the pool's finalizer.
func (op *Operator) Close() {
	op.mu.Lock()
	defer op.mu.Unlock()
	op.closePoolLocked()
}

// closePoolLocked requires op.mu.
func (op *Operator) closePoolLocked() {
	if op.pool != nil {
		op.pool.Close()
		op.pool = nil
		op.fused = nil
		op.multi = nil
	}
}

// markEvicted is called by the operator cache when this entry falls out:
// the pool is closed the moment no parallel rank is stepping on it
// (immediately if idle, else by the last release). A caller that kept
// the *Operator may still Rank afterwards — the pool is then recompiled
// exactly as after Close, and only that recompiled pool falls back to
// finalizer cleanup.
func (op *Operator) markEvicted() {
	op.mu.Lock()
	op.evicted = true
	if op.inflight == 0 {
		op.closePoolLocked()
	}
	op.mu.Unlock()
}

// stochastic returns the column-stochastic matrix, compiling it on first
// use.
func (op *Operator) stochastic() (*sparse.Stochastic, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.stochasticLocked()
}

func (op *Operator) stochasticLocked() (*sparse.Stochastic, error) {
	if op.stoch == nil {
		s, err := op.net.StochasticMatrix()
		if err != nil {
			return nil, err
		}
		op.stoch = s
		kernelCompiles.Add(1)
		mKernelCompiles.Inc()
	}
	return op.stoch, nil
}

// acquireFused returns the fused CSR kernel, compiling it and the pool on
// first use, and registers the caller as an in-flight pool user. The
// returned release must be called once stepping is done; it lets an
// operator evicted mid-rank close its pool as soon as it goes idle.
func (op *Operator) acquireFused() (*sparse.FusedStochastic, func(), error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.fused == nil {
		s, err := op.stochasticLocked()
		if err != nil {
			return nil, nil, err
		}
		if op.pool == nil {
			op.pool = sparse.NewPool(0)
		}
		op.fused = s.Fused(op.pool)
	}
	op.inflight++
	return op.fused, op.releaseFused, nil
}

// acquireMulti returns the batched SpMM view of the fused kernel,
// sharing the fused kernel's CSR matrix, pool, and partition cache, with
// the same in-flight accounting as acquireFused.
func (op *Operator) acquireMulti() (*sparse.FusedStochasticMulti, func(), error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.multi == nil {
		if op.fused == nil {
			s, err := op.stochasticLocked()
			if err != nil {
				return nil, nil, err
			}
			if op.pool == nil {
				op.pool = sparse.NewPool(0)
			}
			op.fused = s.Fused(op.pool)
		}
		op.multi = op.fused.Multi()
	}
	op.inflight++
	return op.multi, op.releaseFused, nil
}

func (op *Operator) releaseFused() {
	op.mu.Lock()
	op.inflight--
	if op.evicted && op.inflight == 0 {
		op.closePoolLocked()
	}
	op.mu.Unlock()
}

// attention returns a private copy of the attention vector A(now, y),
// serving repeats from the cache (callers receive copies because Result
// exposes the vector for mutation-free diagnostics).
func (op *Operator) attention(now, years int) []float64 {
	key := attKey{now: now, years: years}
	op.mu.Lock()
	v, ok := op.att.get(key)
	if !ok {
		v = AttentionVector(op.net, now, years)
		vectorComputes.Add(1)
		op.att.put(key, v)
	}
	op.mu.Unlock()
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// recency returns a private copy of the recency vector T(now, w), cached
// like attention.
func (op *Operator) recency(now int, w float64) []float64 {
	key := recKey{now: now, w: w}
	op.mu.Lock()
	v, ok := op.rec.get(key)
	if !ok {
		v = RecencyVector(op.net, now, w)
		vectorComputes.Add(1)
		op.rec.put(key, v)
	}
	op.mu.Unlock()
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Rank computes AttRank scores at time now with the given parameters,
// reusing every compiled piece of the operator. Params.Workers selects
// the kernel exactly as in the package-level Rank: 0 runs the serial CSC
// reference kernel, any other value the fused parallel kernel.
func (op *Operator) Rank(now int, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := op.net.N()
	if n == 0 {
		return nil, ErrEmptyNetwork
	}
	started := time.Now()

	att := op.attention(now, p.AttentionYears)
	rec := op.recency(now, p.W)

	res := &Result{Attention: att, Recency: rec}
	if p.Alpha == 0 {
		// Limit case discussed in §4.4: a single evaluation suffices.
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = p.Beta*att[i] + p.Gamma*rec[i]
		}
		res.Scores = scores
		res.Iterations = 1
		res.Converged = true
		res.Residuals = []float64{0}
		res.Duration = time.Since(started)
		op.observeRank(res, p)
		return res, nil
	}

	var x []float64
	if p.Start != nil {
		if len(p.Start) != n {
			return nil, fmt.Errorf("core: warm start has %d entries for %d papers", len(p.Start), n)
		}
		x = make([]float64, n)
		copy(x, p.Start)
		for i, v := range x {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("core: warm start entry %d is %v", i, v)
			}
		}
		sparse.Normalize(x)
	} else {
		x = sparse.Uniform(n)
	}
	next := make([]float64, n)
	tol := p.tol()

	if p.Workers == 0 {
		// Serial CSC reference kernel: the bit-level ground truth the
		// fused kernel is tested against.
		s, err := op.stochastic()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			s.MulVec(next, x)
			for i := range next {
				next[i] = p.Alpha*next[i] + p.Beta*att[i] + p.Gamma*rec[i]
			}
			resid := sparse.L1Diff(next, x)
			res.Residuals = append(res.Residuals, resid)
			mIterationResidual.Observe(resid)
			x, next = next, x
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
	} else {
		f, release, err := op.acquireFused()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		parts := p.Workers
		if parts < 0 {
			parts = runtime.GOMAXPROCS(0)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			resid := f.Step(next, x, att, rec, p.Alpha, p.Beta, p.Gamma, parts)
			res.Residuals = append(res.Residuals, resid)
			mIterationResidual.Observe(resid)
			x, next = next, x
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
		release()
	}
	res.Scores = x
	res.Duration = time.Since(started)
	op.observeRank(res, p)
	return res, nil
}

// observeRank records the per-rank telemetry: iteration count, final
// residual, duration split by warm/cold start, and the convergence
// outcome.
func (op *Operator) observeRank(res *Result, p Params) {
	mRankIterations.Observe(float64(res.Iterations))
	if len(res.Residuals) > 0 {
		mFinalResidual.Set(res.Residuals[len(res.Residuals)-1])
	}
	mRankSeconds.With(startLabel(p.Start != nil)).Observe(res.Duration.Seconds())
	mRanksTotal.With(convergedLabel(res.Converged)).Inc()
}
