package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"attrank/internal/graph"
	"attrank/internal/sparse"
)

// Operator is the compiled form of AttRank over one immutable network: it
// owns the normalized citation matrix (CSC), the CSR mirror with its
// nnz-balanced row partition, a persistent worker pool, and small caches
// of the attention and recency vectors. Compile once, then call Rank as
// many times as needed — across power iterations, across warm-started
// re-ranks of a live corpus, and across the cells of a parameter sweep —
// without ever rebuilding matrix state.
//
// Everything heavy is built lazily on first use: an operator compiled for
// a network that is only ever ranked with α = 0 never assembles a matrix,
// and the CSR mirror plus worker pool exist only once a parallel rank
// (Params.Workers ≠ 0) runs. All methods are safe for concurrent use;
// concurrent Rank calls share the matrix read-only and the pool
// interleaves their row-range tasks.
type Operator struct {
	net *graph.Network

	mu    sync.Mutex // guards the lazy state below
	stoch *sparse.Stochastic
	tiled *sparse.TiledStochastic
	tmul  *sparse.TiledMulti
	pool  *sparse.Pool
	att   vecCache[attKey]
	rec   vecCache[recKey]

	// perm/inv are the cache-aware paper-id relabeling the tiled kernel
	// was compiled under (perm[original] = storage). Everything outside
	// the iteration loop — Params, Results, Explain, the serial
	// reference kernel, the vector caches' public copies — stays in
	// original id space; score and attention/recency vectors cross the
	// boundary through permute/unpermute copies at Rank entry and exit.
	perm, inv []int32
	// forcedPerm, when set before the first parallel rank, replaces the
	// RCM ordering. Test hook for the relabeling-invariance suite.
	forcedPerm []int32
	compile    CompileStats

	// inflight counts parallel Ranks currently stepping on the pool;
	// evicted marks an operator dropped from the OperatorFor cache. The
	// pair lets eviction close the pool deterministically the moment it
	// goes idle, instead of waiting for the finalizer.
	inflight int
	evicted  bool

	// The sharded-ranking stepper cache lives under its own lock: the
	// provider calls back into TiledKernel (op.mu) and eviction holds
	// op.mu, so sharing the mutex would deadlock (see shard.go).
	shardMu sync.Mutex
	stepper ShardStepper
}

// CompileStats records the cost and shape of the parallel kernel
// compilation pipeline: the stochastic-matrix normalization and the RCM
// relabeling run concurrently, then the tiled layout is built from both.
// WallNS is the end-to-end pipeline time; StochasticNS + RelabelNS +
// TiledNS is what the same work would cost serially.
type CompileStats struct {
	StochasticNS int64 // CSC build + column normalization
	RelabelNS    int64 // RCM ordering over the symmetrized adjacency
	TiledNS      int64 // tile cutting + index compression
	WallNS       int64 // wall clock of the whole (concurrent) pipeline
	Layout       sparse.LayoutStats
}

type attKey struct{ now, years int }

type recKey struct {
	now int
	w   float64
}

// vectorCacheCap bounds the attention/recency caches; a sweep revisits a
// handful of (now, y) and (now, w) combinations, so a small cap suffices
// and keeps a long-lived operator from accumulating vectors.
const vectorCacheCap = 16

// vecCache is a tiny LRU of computed vectors. Capacity overflow evicts
// exactly one entry — the least recently used — so the vector a caller
// is hammering always survives a sweep over many one-off keys. (The old
// policy cleared the whole map, which made an alternating hot-key/sweep
// pattern recompute the hot vector on every call.) Callers synchronize
// through the operator's mutex.
type vecCache[K comparable] struct {
	entries map[K]*vecEntry
	clock   int64
}

type vecEntry struct {
	v    []float64 // original id space
	vp   []float64 // permuted twin for the tiled kernel; built lazily
	used int64
}

// get returns the cached entry and bumps its recency.
func (c *vecCache[K]) get(k K) (*vecEntry, bool) {
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.clock++
	e.used = c.clock
	return e, true
}

// put inserts a vector, evicting the single least-recently-used entry
// if the cache is full. The O(cap) scan is irrelevant next to the
// O(N) vector computation that preceded every put.
func (c *vecCache[K]) put(k K, v []float64) *vecEntry {
	if c.entries == nil {
		c.entries = make(map[K]*vecEntry)
	}
	if len(c.entries) >= vectorCacheCap {
		var (
			lruKey K
			lru    *vecEntry
		)
		for key, e := range c.entries {
			if lru == nil || e.used < lru.used {
				lruKey, lru = key, e
			}
		}
		delete(c.entries, lruKey)
		mVectorEvictions.Inc()
	}
	c.clock++
	e := &vecEntry{v: v, used: c.clock}
	c.entries[k] = e
	return e
}

// kernelCompiles counts stochastic-matrix compilations process-wide; with
// sparse.CSRConversions it backs the compile-once regression tests.
var kernelCompiles atomic.Int64

// vectorComputes counts attention/recency vector computations (cache
// misses) process-wide. Diagnostic hook for the cache-eviction tests.
var vectorComputes atomic.Int64

// KernelCompiles reports how many times this process normalized a
// citation matrix into ranking-operator form. Diagnostic hook for tests.
func KernelCompiles() int64 { return kernelCompiles.Load() }

// Compile returns a fresh operator for the network. Matrix state is built
// lazily, so this is cheap; use OperatorFor to share compiled operators
// across Rank calls.
func Compile(net *graph.Network) *Operator {
	return &Operator{net: net}
}

// operatorCacheSize bounds the process-wide operator cache. Each entry
// pins its network plus up to two copies of the matrix (CSC + CSR), so
// the cache is deliberately small: big enough for a live service (one
// corpus), a sweep (one split), and the tests' churn, without keeping
// every historical epoch alive.
const operatorCacheSize = 4

var (
	opCacheMu sync.Mutex
	opCache   []*Operator // most recently used first
)

// OperatorFor returns the cached operator for the network, compiling one
// on first sight. Networks are immutable and compared by identity, so a
// re-rank of the same *graph.Network — the ingest debounce loop between
// compactions, every cell of a parameter sweep, repeated API calls —
// reuses the compiled matrix state instead of rebuilding it. An evicted
// operator closes its worker pool as soon as no rank is using it (the
// pool finalizer remains as the backstop for operators dropped without
// ever entering the cache).
func OperatorFor(net *graph.Network) *Operator {
	opCacheMu.Lock()
	for i, op := range opCache {
		if op.net == net {
			if i > 0 {
				copy(opCache[1:i+1], opCache[:i])
				opCache[0] = op
			}
			opCacheMu.Unlock()
			return op
		}
	}
	op := Compile(net)
	var dropped *Operator
	if len(opCache) < operatorCacheSize {
		opCache = append(opCache, nil)
	} else {
		dropped = opCache[len(opCache)-1]
	}
	copy(opCache[1:], opCache)
	opCache[0] = op
	opCacheMu.Unlock()
	if dropped != nil {
		dropped.markEvicted()
	}
	return op
}

// Network returns the network this operator was compiled from.
func (op *Operator) Network() *graph.Network { return op.net }

// Close releases the worker pool. Subsequent parallel Ranks recompile it;
// Close must not race with an in-flight Rank. Operators dropped without
// Close are cleaned up by the pool's finalizer.
func (op *Operator) Close() {
	op.mu.Lock()
	defer op.mu.Unlock()
	op.closePoolLocked()
}

// closePoolLocked requires op.mu.
func (op *Operator) closePoolLocked() {
	if op.pool != nil {
		op.pool.Close()
		op.pool = nil
		op.tiled = nil
		op.tmul = nil
	}
}

// markEvicted is called by the operator cache when this entry falls out:
// the pool is closed the moment no parallel rank is stepping on it
// (immediately if idle, else by the last release). A caller that kept
// the *Operator may still Rank afterwards — the pool is then recompiled
// exactly as after Close, and only that recompiled pool falls back to
// finalizer cleanup.
func (op *Operator) markEvicted() {
	op.mu.Lock()
	op.evicted = true
	if op.inflight == 0 {
		op.closePoolLocked()
	}
	op.mu.Unlock()
}

// stochastic returns the column-stochastic matrix, compiling it on first
// use.
func (op *Operator) stochastic() (*sparse.Stochastic, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	return op.stochasticLocked()
}

func (op *Operator) stochasticLocked() (*sparse.Stochastic, error) {
	if op.stoch == nil {
		s, err := op.net.StochasticMatrix()
		if err != nil {
			return nil, err
		}
		op.stoch = s
		kernelCompiles.Add(1)
		mKernelCompiles.Inc()
	}
	return op.stoch, nil
}

// buildTiledLocked compiles the parallel kernel pipeline: the
// column-stochastic normalization and the RCM relabeling are
// independent (the relabeling reads only the immutable network
// adjacency), so they run concurrently; once both finish, the
// degree-run ordering — which needs the matrix pattern — refines the
// RCM ranks, and the tiled layout is cut from the result. Requires
// op.mu.
func (op *Operator) buildTiledLocked() error {
	if op.tiled != nil {
		return nil
	}
	t0 := time.Now()
	type permResult struct {
		perm []int32
		ns   int64
	}
	permCh := make(chan permResult, 1)
	if op.forcedPerm != nil {
		permCh <- permResult{perm: op.forcedPerm}
	} else {
		net := op.net
		go func() {
			tp := time.Now()
			n := net.N()
			deg := make([]int32, n)
			for i := range deg {
				deg[i] = int32(net.Degree(int32(i)))
			}
			perm := sparse.RCMOrder(n, deg, net.Neighbors)
			permCh <- permResult{perm: perm, ns: time.Since(tp).Nanoseconds()}
		}()
	}
	ts := time.Now()
	s, err := op.stochasticLocked()
	stochNS := time.Since(ts).Nanoseconds()
	if err != nil {
		return err // permCh is buffered; the relabel goroutine cannot leak
	}
	pr := <-permCh
	if op.forcedPerm == nil {
		// Production relabeling: degree runs for branch-predictable trip
		// counts, RCM ranks breaking ties for residual locality.
		td := time.Now()
		pr.perm = s.DegreeOrder(pr.perm)
		pr.ns += time.Since(td).Nanoseconds()
	}
	if op.pool == nil {
		op.pool = sparse.NewPool(0)
	}
	tt := time.Now()
	op.tiled = s.Tiled(op.pool, pr.perm)
	op.tmul = op.tiled.Multi()
	tiledNS := time.Since(tt).Nanoseconds()
	op.perm = op.tiled.Perm()
	op.inv = sparse.InversePerm(op.perm)
	op.compile = CompileStats{
		StochasticNS: stochNS,
		RelabelNS:    pr.ns,
		TiledNS:      tiledNS,
		WallNS:       time.Since(t0).Nanoseconds(),
		Layout:       op.tiled.Stats(),
	}
	observeLayout(op.compile)
	return nil
}

// acquireTiled returns the tiled kernel, compiling it (and the pool and
// relabeling) on first use, and registers the caller as an in-flight
// pool user. The returned release must be called once stepping is done;
// it lets an operator evicted mid-rank close its pool as soon as it
// goes idle.
func (op *Operator) acquireTiled() (*sparse.TiledStochastic, func(), error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if err := op.buildTiledLocked(); err != nil {
		return nil, nil, err
	}
	op.inflight++
	return op.tiled, op.releaseKernel, nil
}

// acquireTiledMulti returns the batched SpMM view of the tiled kernel,
// sharing its layout, pool, and partition cache, with the same
// in-flight accounting as acquireTiled.
func (op *Operator) acquireTiledMulti() (*sparse.TiledMulti, func(), error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if err := op.buildTiledLocked(); err != nil {
		return nil, nil, err
	}
	op.inflight++
	return op.tmul, op.releaseKernel, nil
}

func (op *Operator) releaseKernel() {
	op.mu.Lock()
	op.inflight--
	if op.evicted && op.inflight == 0 {
		op.closePoolLocked()
	}
	op.mu.Unlock()
}

// PrimeKernel forces compilation of the parallel tiled kernel — the
// work the first parallel Rank would otherwise pay — and returns the
// pipeline timings and layout statistics. Benches and servers that want
// a compiled operator before taking traffic call this explicitly.
func (op *Operator) PrimeKernel() (CompileStats, error) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if err := op.buildTiledLocked(); err != nil {
		return CompileStats{}, err
	}
	return op.compile, nil
}

// forcePermutation overrides the RCM relabeling for tests. It must be
// called before the first parallel rank compiles the kernel.
func (op *Operator) forcePermutation(perm []int32) {
	op.mu.Lock()
	defer op.mu.Unlock()
	if op.tiled != nil {
		panic("core: forcePermutation after kernel compile")
	}
	op.forcedPerm = perm
}

// attEntryLocked returns the cache entry for A(now, y), computing the
// original-space vector on a miss. Requires op.mu.
func (op *Operator) attEntryLocked(now, years int) *vecEntry {
	key := attKey{now: now, years: years}
	e, ok := op.att.get(key)
	if !ok {
		v := AttentionVector(op.net, now, years)
		vectorComputes.Add(1)
		e = op.att.put(key, v)
	}
	return e
}

// recEntryLocked is attEntryLocked for T(now, w).
func (op *Operator) recEntryLocked(now int, w float64) *vecEntry {
	key := recKey{now: now, w: w}
	e, ok := op.rec.get(key)
	if !ok {
		v := RecencyVector(op.net, now, w)
		vectorComputes.Add(1)
		e = op.rec.put(key, v)
	}
	return e
}

// attention returns a private copy of the attention vector A(now, y),
// serving repeats from the cache (callers receive copies because Result
// exposes the vector for mutation-free diagnostics).
func (op *Operator) attention(now, years int) []float64 {
	op.mu.Lock()
	v := op.attEntryLocked(now, years).v
	op.mu.Unlock()
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// recency returns a private copy of the recency vector T(now, w), cached
// like attention.
func (op *Operator) recency(now int, w float64) []float64 {
	op.mu.Lock()
	v := op.recEntryLocked(now, w).v
	op.mu.Unlock()
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// permuteInto fills dst[perm[i]] = src[i].
func permuteInto(dst, src []float64, perm []int32) {
	for i, v := range src {
		dst[perm[i]] = v
	}
}

// permutedAttention returns the shared storage-space twin of the
// attention vector, building and caching it on first use. Callers must
// not mutate it. Must only be called once the tiled kernel (and so
// op.perm) exists.
func (op *Operator) permutedAttention(now, years int) []float64 {
	op.mu.Lock()
	defer op.mu.Unlock()
	e := op.attEntryLocked(now, years)
	if e.vp == nil {
		e.vp = make([]float64, len(e.v))
		permuteInto(e.vp, e.v, op.perm)
	}
	return e.vp
}

// permutedRecency is permutedAttention for the recency vector.
func (op *Operator) permutedRecency(now int, w float64) []float64 {
	op.mu.Lock()
	defer op.mu.Unlock()
	e := op.recEntryLocked(now, w)
	if e.vp == nil {
		e.vp = make([]float64, len(e.v))
		permuteInto(e.vp, e.v, op.perm)
	}
	return e.vp
}

// Rank computes AttRank scores at time now with the given parameters,
// reusing every compiled piece of the operator. Params.Workers selects
// the kernel exactly as in the package-level Rank: 0 runs the serial CSC
// reference kernel, any other value the fused parallel kernel.
func (op *Operator) Rank(now int, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := op.net.N()
	if n == 0 {
		return nil, ErrEmptyNetwork
	}
	started := time.Now()

	att := op.attention(now, p.AttentionYears)
	rec := op.recency(now, p.W)

	res := &Result{Attention: att, Recency: rec}
	if p.Alpha == 0 {
		// Limit case discussed in §4.4: a single evaluation suffices.
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = p.Beta*att[i] + p.Gamma*rec[i]
		}
		res.Scores = scores
		res.Iterations = 1
		res.Converged = true
		res.Residuals = []float64{0}
		res.Duration = time.Since(started)
		op.observeRank(res, p)
		return res, nil
	}

	var x []float64
	if p.Start != nil {
		if len(p.Start) != n {
			return nil, fmt.Errorf("core: warm start has %d entries for %d papers", len(p.Start), n)
		}
		x = make([]float64, n)
		copy(x, p.Start)
		for i, v := range x {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("core: warm start entry %d is %v", i, v)
			}
		}
		sparse.Normalize(x)
	} else {
		x = sparse.Uniform(n)
	}
	next := make([]float64, n)
	tol := p.tol()

	if p.Workers == 0 {
		// Serial CSC reference kernel: the bit-level ground truth the
		// fused kernel is tested against.
		s, err := op.stochastic()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			s.MulVec(next, x)
			for i := range next {
				next[i] = p.Alpha*next[i] + p.Beta*att[i] + p.Gamma*rec[i]
			}
			resid := sparse.L1Diff(next, x)
			res.Residuals = append(res.Residuals, resid)
			mIterationResidual.Observe(resid)
			x, next = next, x
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
	} else {
		// Parallel path: the tiled kernel iterates in storage (permuted)
		// id space. The start vector and the attention/recency vectors
		// cross the boundary here; scores cross back after convergence.
		// Permuting a vector copies bits, so every iterate is the exact
		// permutation of the reference iterate (see sparse.TiledStochastic
		// on the canonical accumulation order).
		ti, release, err := op.acquireTiled()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		perm := op.perm
		attP := op.permutedAttention(now, p.AttentionYears)
		recP := op.permutedRecency(now, p.W)
		xp := next // reuse the spare buffer as the permuted iterate
		permuteInto(xp, x, perm)
		// Sharded deployment, when configured: the same chain driven over
		// the row-block shards (bit-identical at equal partition counts —
		// DESIGN.md §16). Any failure falls through to the local loop with
		// res restored, so a dying shard costs one rank of latency only.
		if fin, ok := op.rankSharded(res, xp, attP, recP, p, tol); ok {
			copy(xp, fin)
			release()
			for i := range x {
				x[i] = xp[perm[i]]
			}
			res.Scores = x
			res.Duration = time.Since(started)
			op.observeRank(res, p)
			return res, nil
		}
		nextP := make([]float64, n)
		parts := p.Workers
		if parts < 0 {
			parts = runtime.GOMAXPROCS(0)
		}
		for iter := 1; iter <= p.maxIter(); iter++ {
			resid := ti.Step(nextP, xp, attP, recP, p.Alpha, p.Beta, p.Gamma, parts)
			res.Residuals = append(res.Residuals, resid)
			mIterationResidual.Observe(resid)
			xp, nextP = nextP, xp
			res.Iterations = iter
			if resid < tol {
				res.Converged = true
				break
			}
		}
		release()
		for i := range x {
			x[i] = xp[perm[i]]
		}
	}
	res.Scores = x
	res.Duration = time.Since(started)
	op.observeRank(res, p)
	return res, nil
}

// observeRank records the per-rank telemetry: iteration count, final
// residual, duration split by warm/cold start, and the convergence
// outcome.
func (op *Operator) observeRank(res *Result, p Params) {
	mRankIterations.Observe(float64(res.Iterations))
	if len(res.Residuals) > 0 {
		mFinalResidual.Set(res.Residuals[len(res.Residuals)-1])
	}
	mRankSeconds.With(startLabel(p.Start != nil)).Observe(res.Duration.Seconds())
	mRanksTotal.With(convergedLabel(res.Converged)).Inc()
}
