package replication

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"attrank/internal/core"
	"attrank/internal/dataio"
	"attrank/internal/graph"
	"attrank/internal/impact"
	"attrank/internal/ingest"
	"attrank/internal/metrics"
)

// Follower durable state, all under FollowerConfig.Dir:
//
//	base.anb    — the compacted corpus at the last saved marker boundary
//	vectors.bin — scores, attention, recency at that boundary
//	state.json  — the cursor tying them together (written last; it is
//	              the commit point — a crash mid-save leaves the old
//	              trio intact)
//	wal.log     — every shipped record re-encoded locally, so recovery
//	              can replay the chain forward from the saved boundary
//
// The local encoding is byte-identical to the leader's, so replaying a
// local record advances the leader-coordinate offset by exactly its
// WireSize — that is how recovery recomputes where to resume streaming
// without talking to the leader first.
const (
	baseFile    = "base.anb"
	vectorsFile = "vectors.bin"
	stateFile   = "state.json"
	walFile     = "wal.log"
)

// diskState is state.json: the marker-boundary cursor for the saved
// base + vectors pair.
type diskState struct {
	Instance       uint64      `json:"instance"`
	Gen            uint64      `json:"gen"`
	LeaderOffset   int64       `json:"leader_offset"`
	Epoch          uint64      `json:"epoch"`
	RankedAt       int         `json:"ranked_at"`
	LocalWALOffset int64       `json:"local_wal_offset"`
	Papers         int         `json:"papers"`
	Params         wireParams  `json:"params"`
	PushTol        float64     `json:"push_tol,omitempty"`
	Impact         *wireImpact `json:"impact,omitempty"`
}

// saveState persists the follower's last FULL marker boundary: corpus,
// the three exact ranking vectors, then state.json as the commit
// record. Push-mode epochs past that boundary are deliberately not the
// anchor — their scores are approximate and their mutations are still
// in the local WAL, so recovery replays them through the same push
// path the stream used.
func (f *Follower) saveState() error {
	r := f.lastFull
	if r == nil || f.base == nil {
		return fmt.Errorf("replication: no state to save")
	}
	if err := dataio.SaveBinaryAtomic(filepath.Join(f.dir, baseFile), f.base); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, v := range [][]float64{r.Result.Scores, r.Result.Attention, r.Result.Recency} {
		if err := writeVector(&buf, v); err != nil {
			return err
		}
	}
	if err := writeFileAtomic(filepath.Join(f.dir, vectorsFile), buf.Bytes()); err != nil {
		return err
	}
	st := diskState{
		Instance:       f.instance,
		Gen:            f.gen,
		LeaderOffset:   f.markerLeaderOff,
		Epoch:          r.Epoch,
		RankedAt:       r.RankedAt,
		LocalWALOffset: f.markerLocalOff,
		Papers:         f.base.N(),
		Params:         f.wp,
		PushTol:        f.pushTol,
		Impact:         wireImpactOf(f.impactCfg),
	}
	js, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(f.dir, stateFile), append(js, '\n'))
}

// recover rebuilds the follower from its durable state: seed the chain
// at the saved marker boundary, then replay the local WAL tail forward
// through the same apply path the stream uses. Returns errNoState when
// the directory holds no state (first start), any other error meaning
// the state is unusable (caller wipes and re-bootstraps).
func (f *Follower) recover() error {
	js, err := os.ReadFile(filepath.Join(f.dir, stateFile))
	if os.IsNotExist(err) {
		return errNoState
	}
	if err != nil {
		return err
	}
	var st diskState
	if err := json.Unmarshal(js, &st); err != nil {
		return fmt.Errorf("replication: state.json: %w", err)
	}
	net, err := dataio.LoadBinaryFile(filepath.Join(f.dir, baseFile))
	if err != nil {
		return err
	}
	if net.N() != st.Papers {
		return fmt.Errorf("replication: base.anb has %d papers, state.json says %d", net.N(), st.Papers)
	}
	vf, err := os.Open(filepath.Join(f.dir, vectorsFile))
	if err != nil {
		return err
	}
	defer vf.Close()
	vecs := make([][]float64, 3)
	for i := range vecs {
		if vecs[i], err = readVector(vf, net.N()); err != nil {
			return err
		}
	}
	// The saved Impact already has the Workers override applied (it is
	// the config in effect when the state was written), so no override
	// here.
	f.impactCfg = st.Impact.config(0)
	if err := f.seedChain(net, st.Params, vecs[0], vecs[1], vecs[2], st.Epoch, st.RankedAt); err != nil {
		return err
	}
	f.instance, f.gen = st.Instance, st.Gen
	f.pushTol = st.PushTol
	f.markerLeaderOff, f.markerLocalOff = st.LeaderOffset, st.LocalWALOffset
	f.streamOff, f.localWALOff = st.LeaderOffset, st.LocalWALOffset

	// Replay the local WAL tail through the normal apply path (minus the
	// re-append): markers past the boundary re-rank and re-publish, and
	// both offsets advance record by record because the local encoding
	// matches the leader's byte for byte.
	wal, err := ingest.OpenWALAt(filepath.Join(f.dir, walFile), st.LocalWALOffset, func(m ingest.Mutation) error {
		size, err := m.WireSize()
		if err != nil {
			return err
		}
		return f.applyRecord(m, size, false)
	})
	if err != nil {
		return fmt.Errorf("replication: local wal replay: %w", err)
	}
	if torn := wal.TornTail(); torn != nil {
		// Expected crash aftermath: the torn suffix was never applied,
		// and the stream will re-ship it from streamOff.
		f.logf("repl: follower: local wal torn tail truncated: %v", torn)
	}
	f.wal = wal
	f.logf("repl: follower recovered: epoch %d, %d papers, resume offset %d", f.epochV, f.base.N(), f.streamOff)
	return nil
}

// seedChain installs a (corpus, vectors) pair as the follower's chain
// state at the given epoch: corpus published, tracker seeded with the
// scores so the next Update continues the leader's warm-start chain.
func (f *Follower) seedChain(net *graph.Network, wp wireParams, scores, att, rec []float64, epoch uint64, rankedAt int) error {
	params := wp.params(f.cfg.Workers)
	tracker, err := core.NewTracker(params)
	if err != nil {
		return err
	}
	if err := tracker.Seed(net, scores); err != nil {
		return err
	}
	res := &core.Result{Scores: scores, Attention: att, Recency: rec, Converged: true}
	positions := make([]int, net.N())
	for pos, idx := range metrics.Ordering(scores) {
		positions[idx] = pos
	}
	f.base, f.delta, f.tracker = net, nil, tracker
	f.applied, f.pusher = 0, nil
	f.wp = wp
	f.params.Store(&params)
	f.epochV, f.rankedAt = epoch, rankedAt
	r := &ingest.Ranking{
		Epoch:     epoch,
		Net:       net,
		Result:    res,
		Positions: positions,
		Stats:     net.ComputeStats(),
		RankedAt:  rankedAt,
		Impact:    impact.ForRanking(net, scores, rankedAt, f.impactCfg, f.logf),
	}
	// The seeded state is always a full (exact) boundary: ReplState
	// anchors bootstraps there, and saveState anchors recovery there.
	f.lastFull = r
	f.ranking.Store(r)
	f.localEpochA.Store(epoch)
	return nil
}

// wipe discards all durable follower state; the next session starts
// with a full bootstrap. The last published ranking stays visible —
// stale reads are the admission layer's problem (epoch-lag gating), and
// serving them beats serving nothing during a resync.
func (f *Follower) wipe() {
	if f.wal != nil {
		f.wal.Close()
		f.wal = nil
	}
	for _, name := range []string{stateFile, vectorsFile, baseFile, walFile} {
		if err := os.Remove(filepath.Join(f.dir, name)); err != nil && !os.IsNotExist(err) {
			f.logf("repl: follower wipe %s: %v", name, err)
		}
	}
	f.instance, f.gen = 0, 0
	f.base, f.delta, f.tracker = nil, nil, nil
	f.applied, f.pusher, f.lastFull, f.pushTol = 0, nil, nil, 0
	f.impactCfg = impact.Config{}
	f.pend = nil
	f.streamOff, f.localWALOff = 0, 0
	f.markerLeaderOff, f.markerLocalOff = 0, 0
}

// writeFileAtomic writes data via a temp file + rename, so a crash
// mid-write never leaves a half-written file under the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
