package replication

import "attrank/internal/obs"

// Replication metric catalogue (DESIGN.md §12). Registered process-wide,
// like the ingest catalogue: a production process is either one leader
// or one follower, and in-process cluster harnesses share the counters.
var (
	mBootstrapsServed = obs.NewCounter("attrank_repl_bootstraps_served_total",
		"Bootstrap (/repl/state) downloads served by the leader.")
	mStreamsOpen = obs.NewGauge("attrank_repl_streams_open",
		"WAL segment streams currently open on the leader.")
	mBytesShipped = obs.NewCounter("attrank_repl_bytes_shipped_total",
		"WAL bytes shipped to followers (data frame payloads only).")
	mBytesReceived = obs.NewCounter("attrank_repl_bytes_received_total",
		"WAL bytes received from the leader (data frame payloads only).")
	mRecordsApplied = obs.NewCounter("attrank_repl_records_applied_total",
		"Shipped WAL records applied by the follower (markers included).")
	mEpochsApplied = obs.NewCounter("attrank_repl_epochs_applied_total",
		"Epoch markers ranked and published by the follower.")
	mPushEpochsApplied = obs.NewCounter("attrank_repl_push_epochs_applied_total",
		"Push-mode epoch markers replayed incrementally by the follower (subset of epochs applied).")
	mReconnects = obs.NewCounter("attrank_repl_reconnects_total",
		"Follower stream reconnect attempts after an error or disconnect.")
	mFullResyncs = obs.NewCounter("attrank_repl_full_resyncs_total",
		"Follower full re-bootstraps (leader restart, WAL rotation, or local state damage).")
	mEpochLag = obs.NewGauge("attrank_repl_epoch_lag",
		"Leader epoch minus locally published epoch on the follower.")
)
