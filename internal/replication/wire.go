package replication

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"attrank/internal/core"
	"attrank/internal/impact"
)

// Wire protocol (DESIGN.md §12). Two endpoints, mounted by the service
// layer under /repl/ on the leader:
//
//	GET /repl/state
//	    Bootstrap: one JSON header line (stateHeader), then the corpus
//	    in the .anb binary format, then three CRC-framed float64
//	    vectors (scores, attention, recency). The header carries the
//	    exact replication cursor the payload corresponds to.
//
//	GET /repl/wal?instance=I&gen=G&from=N
//	    Segment stream: an unbounded chunked response of frames, each
//	    [type byte][u32 payloadLen][u32 crc32(payload)][payload].
//	    Data frames ('d') carry raw WAL bytes starting at offset N of
//	    generation G — verbatim record bytes, so the follower's record
//	    parser is the WAL's. Heartbeat frames ('h') carry the leader's
//	    committed epoch and boundary offset (u64 + i64, little-endian)
//	    so an idle follower still tracks lag. An instance or generation
//	    mismatch answers 409: the follower's offsets are meaningless
//	    and it must re-bootstrap via /repl/state.
const (
	statePath = "/repl/state"
	walPath   = "/repl/wal"

	frameData      byte = 'd'
	frameHeartbeat byte = 'h'
)

// MaxFramePayload bounds one CRC frame; writers chunk well below this,
// readers reject anything above it as corruption.
const MaxFramePayload = 1 << 24

// WriteFrame emits one CRC-framed protocol frame:
// [type byte][u32 payloadLen][u32 crc32(payload)][payload], integers
// little-endian. The framing is shared beyond replication — the sharded
// ranking exchange (internal/shard) speaks the same frames over its own
// endpoints.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, verifying its CRC. The returned payload
// aliases buf when it fits; callers must copy bytes they keep. The
// header is read into buf too (a stack header array would escape
// through the io.Reader interface and allocate per frame, which the
// sharded exchange's zero-allocation steady state cannot afford).
func ReadFrame(r io.Reader, buf []byte) (typ byte, payload []byte, _ []byte, err error) {
	if cap(buf) < 9 {
		buf = make([]byte, 64)
	}
	hdr := buf[:9]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, buf, err
	}
	typ = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	want := binary.LittleEndian.Uint32(hdr[5:9])
	if n > MaxFramePayload {
		return 0, nil, buf, fmt.Errorf("replication: implausible frame of %d bytes", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, err
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, buf, fmt.Errorf("replication: frame crc mismatch (got %08x, want %08x)", got, want)
	}
	return typ, payload, buf, nil
}

// heartbeatPayload encodes the leader's committed epoch and boundary
// offset.
func heartbeatPayload(epoch uint64, offset int64) []byte {
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:8], epoch)
	binary.LittleEndian.PutUint64(p[8:16], uint64(offset))
	return p[:]
}

func parseHeartbeat(p []byte) (epoch uint64, offset int64, ok bool) {
	if len(p) != 16 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(p[0:8]), int64(binary.LittleEndian.Uint64(p[8:16])), true
}

// wireParams is the parameter fingerprint exchanged at bootstrap. It
// excludes Start (the tracker owns warm starts) but includes Workers:
// per-score arithmetic is partition-independent, yet the stopping
// residual is a tree reduction over worker partials, so a different
// partition count can flip the last iteration in the last ulp. A
// follower adopts the leader's value unless explicitly overridden.
type wireParams struct {
	Alpha          float64 `json:"alpha"`
	Beta           float64 `json:"beta"`
	Gamma          float64 `json:"gamma"`
	AttentionYears int     `json:"attention_years"`
	W              float64 `json:"w"`
	Tol            float64 `json:"tol"`
	MaxIter        int     `json:"max_iter"`
	Workers        int     `json:"workers"`
}

func wireParamsOf(p core.Params) wireParams {
	return wireParams{Alpha: p.Alpha, Beta: p.Beta, Gamma: p.Gamma,
		AttentionYears: p.AttentionYears, W: p.W, Tol: p.Tol, MaxIter: p.MaxIter,
		Workers: p.Workers}
}

// params materializes core.Params. workersOverride replaces the leader's
// partition count when nonzero — at the cost of the bit-equality
// guarantee, see the type comment.
func (wp wireParams) params(workersOverride int) core.Params {
	w := wp.Workers
	if workersOverride != 0 {
		w = workersOverride
	}
	return core.Params{Alpha: wp.Alpha, Beta: wp.Beta, Gamma: wp.Gamma,
		AttentionYears: wp.AttentionYears, W: wp.W, Tol: wp.Tol, MaxIter: wp.MaxIter,
		Workers: w}
}

// equalRanking reports whether two parameter sets produce the same
// scores (everything but the partition count must match; Workers is
// compared too because of the residual tie-break above).
func (wp wireParams) equalRanking(other wireParams) bool { return wp == other }

// stateHeader is the JSON line that precedes the bootstrap payload.
// The bootstrap is always anchored at a FULL epoch boundary (see
// ingest.ReplState): the shipped scores are exact, and any push-mode
// epochs after Offset are replayed by the follower itself.
type stateHeader struct {
	Instance uint64     `json:"instance"`
	Gen      uint64     `json:"gen"`
	Offset   int64      `json:"offset"`
	Epoch    uint64     `json:"epoch"`
	RankedAt int        `json:"ranked_at"`
	Papers   int        `json:"papers"`
	Params   wireParams `json:"params"`
	// PushTol is the leader's incremental-ranking settle tolerance
	// (ingest.Config.PushTol; 0 = push path disabled). A follower
	// replaying a push-mode epoch marker must settle to the same
	// tolerance or its scores diverge from the leader's.
	PushTol float64 `json:"push_tol,omitempty"`
	// Impact carries the leader's multi-indicator configuration (nil =
	// indicators disabled). Followers recompute each full epoch's
	// impact.Epoch from these exact values — impact.Compute is pure, so
	// recomputation IS replication (DESIGN.md §15).
	Impact *wireImpact `json:"impact,omitempty"`
}

// wireImpact is the defaults-resolved impact.Config exchanged at
// bootstrap; presence implies Enabled. Workers rides along for the same
// reason wireParams carries it: the influence PageRank's stopping
// residual is partition-shaped.
type wireImpact struct {
	ImpulseWindow int     `json:"impulse_window"`
	PRAlpha       float64 `json:"pr_alpha"`
	PRTol         float64 `json:"pr_tol"`
	PRMaxIter     int     `json:"pr_max_iter"`
	Workers       int     `json:"workers,omitempty"`
}

func wireImpactOf(cfg impact.Config) *wireImpact {
	if !cfg.Enabled {
		return nil
	}
	cfg = cfg.WithDefaults()
	return &wireImpact{ImpulseWindow: cfg.ImpulseWindow, PRAlpha: cfg.PRAlpha,
		PRTol: cfg.PRTol, PRMaxIter: cfg.PRMaxIter, Workers: cfg.Workers}
}

// config materializes impact.Config; workersOverride mirrors
// wireParams.params, with the same bit-equality caveat.
func (wi *wireImpact) config(workersOverride int) impact.Config {
	if wi == nil {
		return impact.Config{}
	}
	w := wi.Workers
	if workersOverride != 0 {
		w = workersOverride
	}
	return impact.Config{Enabled: true, ImpulseWindow: wi.ImpulseWindow,
		PRAlpha: wi.PRAlpha, PRTol: wi.PRTol, PRMaxIter: wi.PRMaxIter, Workers: w}
}

func writeHeader(w io.Writer, hdr stateHeader) error {
	return json.NewEncoder(w).Encode(hdr) // one line, '\n'-terminated
}

// writeVector emits one float64 vector as u32 length, the raw values
// little-endian, and a u32 CRC of the value bytes.
func writeVector(w io.Writer, v []float64) error {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(v)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	if _, err := w.Write(buf); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(n[:], crc32.ChecksumIEEE(buf))
	_, err := w.Write(n[:])
	return err
}

// readVector reads one writeVector payload, enforcing the expected
// length and the CRC.
func readVector(r io.Reader, wantN int) ([]float64, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("replication: vector length: %w", err)
	}
	count := int(binary.LittleEndian.Uint32(n[:]))
	if count != wantN {
		return nil, fmt.Errorf("replication: vector of %d values, want %d", count, wantN)
	}
	buf := make([]byte, 8*count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("replication: vector body: %w", err)
	}
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("replication: vector crc: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(buf), binary.LittleEndian.Uint32(n[:]); got != want {
		return nil, fmt.Errorf("replication: vector crc mismatch (got %08x, want %08x)", got, want)
	}
	v := make([]float64, count)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return v, nil
}
