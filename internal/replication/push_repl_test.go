package replication

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"attrank/internal/graph"
	"attrank/internal/ingest"
)

// pushNet builds a corpus whose push regions are small: 400 papers in
// disjoint 20-paper citation chains, so a streak of single-citation
// pushes stays under the cumulative touched-fraction budget (a tiny or
// densely connected corpus correctly falls back to full epochs, which
// would make these tests vacuous).
func pushNet(t *testing.T) *graph.Network {
	t.Helper()
	b := graph.NewBuilder()
	for i := 0; i < 400; i++ {
		if _, err := b.AddPaper(fmt.Sprintf("s%d", i), 1990+i/20, nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(1); i < 400; i++ {
		if i%20 != 0 {
			b.AddEdgeByIndex(i, i-1)
		}
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// startPushLeader is startLeader with the incremental push path live:
// every citation write debounces immediately into its own epoch, which
// the eligibility rules then publish as a push epoch.
func startPushLeader(t *testing.T) (*ingest.Ingester, *httptest.Server) {
	t.Helper()
	ing, err := ingest.Open(pushNet(t), ingest.Config{
		Dir:         t.TempDir(),
		Params:      testParams(),
		RerankAfter: 1,
		RerankEvery: time.Millisecond,
		PushTol:     1e-8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	l := NewLeader(ing, LeaderConfig{Poll: time.Millisecond, Heartbeat: 20 * time.Millisecond})
	srv := httptest.NewServer(l.Handler())
	t.Cleanup(srv.Close)
	return ing, srv
}

func leaderPush(t *testing.T, ing *ingest.Ingester, citing, cited string) {
	t.Helper()
	before := ing.Status().PushEpochs
	if _, err := ing.AddCitation(ingest.CitationMut{Citing: citing, Cited: cited}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ing.Status().PushEpochs <= before {
		if time.Now().After(deadline) {
			t.Fatalf("citation %s→%s did not publish a push epoch (status %+v)", citing, cited, ing.Status())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerReplaysPushEpochs: incremental epochs ship as their raw
// citations plus a push-flagged marker; the follower replays them with
// its own pusher and must land bit-identical — scores, positions,
// staleness and the Incremental flag itself.
func TestFollowerReplaysPushEpochs(t *testing.T) {
	ing, srv := startPushLeader(t)
	f, err := StartFollower(followerConfig(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	// A streak of push epochs, compared bit-for-bit at each step.
	for _, e := range [][2]string{{"s150", "s3"}, {"s165", "s8"}, {"s155", "s12"}} {
		leaderPush(t, ing, e[0], e[1])
		assertIdentical(t, ing, f)
		lead, loc := ing.Ranking(), f.Ranking()
		if !lead.Incremental {
			t.Fatalf("leader epoch %d not incremental", lead.Epoch)
		}
		if !loc.Incremental {
			t.Fatalf("follower epoch %d lost the Incremental flag", loc.Epoch)
		}
		if loc.Staleness != lead.Staleness {
			t.Fatalf("epoch %d: follower staleness %v, leader %v (must be bit-identical)", loc.Epoch, loc.Staleness, lead.Staleness)
		}
	}

	// The reconciling full epoch compacts the backlog on both sides.
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, ing, f)
	if loc := f.Ranking(); loc.Incremental || loc.Staleness != 0 {
		t.Fatalf("reconciled follower epoch: Incremental=%v Staleness=%v", loc.Incremental, loc.Staleness)
	}
	if got := f.Info().FullResyncs; got != 0 {
		t.Fatalf("follower needed %d full resyncs during push replay", got)
	}
}

// TestFollowerRecoversPushChain: a follower killed mid-push-streak must
// rebuild the streak from its local WAL on restart — push epochs are
// anchored at the last full boundary, so recovery re-replays them and
// lands on the same bits without a resync.
func TestFollowerRecoversPushChain(t *testing.T) {
	ing, srv := startPushLeader(t)
	cfg := followerConfig(t, srv.URL)
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}

	leaderPush(t, ing, "s150", "s3")
	leaderPush(t, ing, "s165", "s8")
	assertIdentical(t, ing, f)
	f.Kill()

	// One more push epoch lands while the follower is down.
	leaderPush(t, ing, "s155", "s12")

	re, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	assertIdentical(t, ing, re)
	loc := re.Ranking()
	if !loc.Incremental || loc.Staleness <= 0 {
		t.Fatalf("recovered follower epoch: Incremental=%v Staleness=%v", loc.Incremental, loc.Staleness)
	}
	if loc.Staleness != ing.Ranking().Staleness {
		t.Fatalf("recovered staleness %v, leader %v", loc.Staleness, ing.Ranking().Staleness)
	}
	if got := re.Info().FullResyncs; got != 0 {
		t.Fatalf("restart needed %d full resyncs", got)
	}
}
