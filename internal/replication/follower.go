package replication

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"attrank/internal/core"
	"attrank/internal/dataio"
	"attrank/internal/graph"
	"attrank/internal/impact"
	"attrank/internal/ingest"
	"attrank/internal/metrics"
)

// errNoState distinguishes "first start, nothing on disk" from damaged
// state during recovery.
var errNoState = errors.New("replication: no follower state on disk")

// errResync marks errors that invalidate the follower's entire local
// state — leader restart, WAL rotation, a shipped record that does not
// decode, or a marker that contradicts the local chain. The run loop
// reacts by wiping and re-bootstrapping.
var errResync = errors.New("replication: full resync required")

func resyncf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), errResync)
}

// FollowerConfig configures StartFollower.
type FollowerConfig struct {
	// Leader is the leader's base URL, e.g. "http://10.0.0.1:8080".
	Leader string
	// Dir holds the follower's durable state (created if missing).
	Dir string
	// Workers overrides the leader's ranking partition count. Leave 0
	// to adopt the leader's — any other value voids the bit-equality
	// guarantee (see wireParams).
	Workers int
	// Expect, when non-nil, pins the ranking parameters: a leader
	// shipping different ones is an operator error, reported and
	// retried rather than silently adopted.
	Expect *core.Params
	// RetryMin/RetryMax bound the reconnect backoff (default 50ms/2s).
	// Each sleep is jittered ±20% so a restarted leader is not hit by
	// every follower in lockstep.
	RetryMin, RetryMax time.Duration
	// Seed seeds the backoff jitter (deterministic; default 1).
	Seed int64
	// Client issues the bootstrap and stream requests. It must not set
	// a Timeout (streams are long-lived); nil uses a fresh client.
	Client *http.Client
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Info is a point-in-time snapshot of the follower's replication state,
// served by /v1/epoch and used by the /readyz lag gate.
type Info struct {
	Leader         string `json:"leader"`
	Connected      bool   `json:"connected"`
	LeaderEpoch    uint64 `json:"leader_epoch"`
	LocalEpoch     uint64 `json:"local_epoch"`
	EpochLag       uint64 `json:"epoch_lag"`
	LeaderOffset   int64  `json:"leader_offset"`
	LocalOffset    int64  `json:"local_offset"`
	Reconnects     uint64 `json:"reconnects"`
	FullResyncs    uint64 `json:"full_resyncs"`
	RecordsApplied uint64 `json:"records_applied"`
	LastError      string `json:"last_error,omitempty"`
}

// Follower replicates a leader's ranking state: bootstrap via
// /repl/state, then consume the WAL stream, re-ranking at every epoch
// marker so its published Rankings are bit-identical to the leader's.
type Follower struct {
	cfg    FollowerConfig
	dir    string
	client *http.Client
	logf   func(string, ...any)

	// Chain state below is owned by the run goroutine; Close/Kill read
	// it only after that goroutine has exited.
	instance, gen   uint64
	wp              wireParams
	base            *graph.Network
	delta           []ingest.Mutation
	tracker         *core.Tracker
	wal             *ingest.WAL
	pend            []byte // shipped bytes not yet forming a whole record
	streamOff       int64  // leader offset after the last applied record
	localWALOff     int64  // local WAL offset after the last applied record
	markerLeaderOff int64  // leader offset after the last applied FULL marker
	markerLocalOff  int64  // local WAL offset after the last applied FULL marker
	epochV          uint64 // last applied epoch
	rankedAt        int
	rng             *rand.Rand

	// Push-replay state (DESIGN.md §14): the leader's push-mode epochs
	// are replayed with core.Pusher rather than compaction. delta[:applied]
	// has been absorbed into push scores; the next full marker compacts
	// the whole delta and resets applied. lastFull anchors the replay —
	// the exact scores and Ranking of the last full epoch — and the
	// durable save point stays at that full boundary (markerLeaderOff /
	// markerLocalOff above), so recovery replays push epochs itself.
	applied  int
	pusher   *core.Pusher
	lastFull *ingest.Ranking
	pushTol  float64
	// impactCfg is the leader's indicator configuration (zero =
	// disabled). Full markers recompute the impact.Epoch with it — the
	// computation is pure, so leader and follower classes are
	// bit-identical; push markers carry lastFull's state forward exactly
	// as the leader does. Set before seedChain runs: the seeded full
	// boundary computes its impact state too.
	impactCfg impact.Config

	params      atomic.Pointer[core.Params]
	ranking     atomic.Pointer[ingest.Ranking]
	connected   atomic.Bool
	leaderEpoch atomic.Uint64
	leaderOffA  atomic.Int64
	localEpochA atomic.Uint64
	localOffA   atomic.Int64
	reconnects  atomic.Uint64
	fullResyncs atomic.Uint64
	recApplied  atomic.Uint64
	lastErr     atomic.Value // string

	ctx      context.Context
	cancel   context.CancelFunc
	stopOnce sync.Once
	done     chan struct{}
}

// StartFollower recovers any durable state under cfg.Dir, starts the
// replication loop, and returns immediately; readiness is observable
// via Info (epoch lag) and Ranking. Unusable on-disk state is wiped and
// re-bootstrapped rather than reported.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("replication: follower needs Leader and Dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = 50 * time.Millisecond
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	f := &Follower{
		cfg:    cfg,
		dir:    cfg.Dir,
		client: cfg.Client,
		logf:   cfg.Logf,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		done:   make(chan struct{}),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.client.Timeout != 0 {
		return nil, fmt.Errorf("replication: follower client must not set a Timeout (streams are long-lived)")
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	if err := f.recover(); err != nil && err != errNoState {
		f.logf("repl: follower: discarding unusable state: %v", err)
		f.wipe()
	}
	go f.run()
	return f, nil
}

// Ranking returns the most recently published local view (nil before
// the first bootstrap completes).
func (f *Follower) Ranking() *ingest.Ranking { return f.ranking.Load() }

// Params returns the ranking parameters in effect (adopted from the
// leader at bootstrap; the zero value before that).
func (f *Follower) Params() core.Params {
	if p := f.params.Load(); p != nil {
		return *p
	}
	return core.Params{}
}

// Info snapshots the replication state.
func (f *Follower) Info() Info {
	info := Info{
		Leader:         f.cfg.Leader,
		Connected:      f.connected.Load(),
		LeaderEpoch:    f.leaderEpoch.Load(),
		LocalEpoch:     f.localEpochA.Load(),
		LeaderOffset:   f.leaderOffA.Load(),
		LocalOffset:    f.localOffA.Load(),
		Reconnects:     f.reconnects.Load(),
		FullResyncs:    f.fullResyncs.Load(),
		RecordsApplied: f.recApplied.Load(),
	}
	if info.LeaderEpoch > info.LocalEpoch {
		info.EpochLag = info.LeaderEpoch - info.LocalEpoch
	}
	if s, ok := f.lastErr.Load().(string); ok {
		info.LastError = s
	}
	return info
}

// WaitEpoch blocks until the follower has published at least epoch, or
// the timeout expires.
func (f *Follower) WaitEpoch(epoch uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for f.localEpochA.Load() < epoch || f.ranking.Load() == nil {
		if time.Now().After(deadline) {
			return fmt.Errorf("replication: epoch %d not reached in %s (at %d, last error: %q)",
				epoch, timeout, f.localEpochA.Load(), f.Info().LastError)
		}
		select {
		case <-f.done:
			return fmt.Errorf("replication: follower stopped before reaching epoch %d", epoch)
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Close stops replication, persists the marker-boundary state so the
// next start resumes without a bootstrap, and closes the local WAL.
func (f *Follower) Close() error {
	f.stopOnce.Do(f.cancel)
	<-f.done
	var err error
	if f.wal != nil {
		if serr := f.saveState(); serr != nil {
			err = serr
		}
		if cerr := f.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		f.wal = nil
	}
	return err
}

// Kill stops replication WITHOUT persisting state — a crash simulation
// for recovery tests: the durable trio stays at its last save point and
// the local WAL keeps whatever was fsync'd, exactly what a power cut
// leaves behind.
func (f *Follower) Kill() {
	f.stopOnce.Do(f.cancel)
	<-f.done
	if f.wal != nil {
		f.wal.Close()
		f.wal = nil
	}
}

// run is the reconnect loop: one session per iteration, exponential
// backoff with deterministic ±20% jitter between attempts, reset
// whenever a session makes progress.
func (f *Follower) run() {
	defer close(f.done)
	backoff := f.cfg.RetryMin
	for {
		if f.ctx.Err() != nil {
			return
		}
		before := f.recApplied.Load()
		err := f.session()
		f.connected.Store(false)
		if f.ctx.Err() != nil {
			return
		}
		if err != nil {
			f.lastErr.Store(err.Error())
			f.logf("repl: follower: %v", err)
			if errors.Is(err, errResync) {
				f.wipe()
				f.fullResyncs.Add(1)
				mFullResyncs.Inc()
			}
		}
		if f.recApplied.Load() > before {
			backoff = f.cfg.RetryMin
		}
		f.reconnects.Add(1)
		mReconnects.Inc()
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(jitter(backoff, f.rng)):
		}
		if backoff *= 2; backoff > f.cfg.RetryMax {
			backoff = f.cfg.RetryMax
		}
	}
}

// jitter spreads d by ±20% using the follower's deterministic source.
func jitter(d time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*rng.Float64()))
}

// session runs one leader connection: bootstrap when no local state
// exists, then consume the WAL stream until it breaks.
func (f *Follower) session() error {
	if f.wal == nil {
		if err := f.bootstrap(); err != nil {
			return err
		}
	}
	return f.stream()
}

// bootstrap downloads /repl/state, seeds the chain from it, and starts
// a fresh local WAL at the shipped marker boundary.
func (f *Follower) bootstrap() error {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, f.cfg.Leader+statePath, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bootstrap: leader answered %s", resp.Status)
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("bootstrap header: %w", err)
	}
	var hdr stateHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return fmt.Errorf("bootstrap header: %w", err)
	}
	if f.cfg.Expect != nil && !wireParamsOf(*f.cfg.Expect).equalRanking(hdr.Params) {
		return fmt.Errorf("bootstrap: leader params %+v differ from expected %+v", hdr.Params, wireParamsOf(*f.cfg.Expect))
	}
	net, err := dataio.ReadBinary(br)
	if err != nil {
		return fmt.Errorf("bootstrap corpus: %w", err)
	}
	if net.N() != hdr.Papers {
		return fmt.Errorf("bootstrap: corpus has %d papers, header says %d", net.N(), hdr.Papers)
	}
	vecs := make([][]float64, 3)
	for i := range vecs {
		if vecs[i], err = readVector(br, net.N()); err != nil {
			return fmt.Errorf("bootstrap vectors: %w", err)
		}
	}
	f.impactCfg = hdr.Impact.config(f.cfg.Workers)
	if err := f.seedChain(net, hdr.Params, vecs[0], vecs[1], vecs[2], hdr.Epoch, hdr.RankedAt); err != nil {
		return fmt.Errorf("bootstrap: %w", err)
	}
	// Fresh local WAL: replication state before this instant is gone.
	walPath := filepath.Join(f.dir, walFile)
	if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	wal, err := ingest.OpenWAL(walPath, nil)
	if err != nil {
		return err
	}
	f.wal = wal
	f.pend = nil
	f.instance, f.gen = hdr.Instance, hdr.Gen
	f.pushTol = hdr.PushTol
	f.streamOff, f.markerLeaderOff = hdr.Offset, hdr.Offset
	f.localWALOff, f.markerLocalOff = wal.Size(), wal.Size()
	f.localOffA.Store(hdr.Offset)
	if err := f.saveState(); err != nil {
		return fmt.Errorf("bootstrap save: %w", err)
	}
	f.logf("repl: follower bootstrapped: epoch %d, %d papers, streaming from offset %d",
		hdr.Epoch, hdr.Papers, hdr.Offset)
	return nil
}

// stream consumes the leader's WAL stream from streamOff until it
// breaks. A clean break (leader restart, network) returns nil and the
// run loop reconnects; a 409 or a record-level contradiction returns an
// errResync.
func (f *Follower) stream() error {
	url := fmt.Sprintf("%s%s?instance=%d&gen=%d&from=%d", f.cfg.Leader, walPath, f.instance, f.gen, f.streamOff)
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("stream connect: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return resyncf("stream: leader instance or wal generation changed")
	default:
		return fmt.Errorf("stream: leader answered %s", resp.Status)
	}
	f.connected.Store(true)
	// Anything buffered from a previous stream was never applied; the
	// leader re-ships from streamOff, which is exactly after the last
	// applied record.
	f.pend = f.pend[:0]
	var buf []byte
	for {
		typ, payload, nbuf, err := ReadFrame(resp.Body, buf)
		buf = nbuf
		if err != nil {
			if f.ctx.Err() != nil {
				return nil
			}
			// Includes CRC failures: transport damage, not state damage.
			// Reconnecting re-requests from the last applied record.
			return fmt.Errorf("stream: %w", err)
		}
		switch typ {
		case frameHeartbeat:
			epoch, off, ok := parseHeartbeat(payload)
			if !ok {
				return fmt.Errorf("stream: malformed heartbeat of %d bytes", len(payload))
			}
			f.leaderEpoch.Store(epoch)
			f.leaderOffA.Store(off)
			f.observeLag()
		case frameData:
			mBytesReceived.Add(int64(len(payload)))
			if err := f.ingestBytes(payload); err != nil {
				return err
			}
		default:
			return fmt.Errorf("stream: unknown frame type %q", typ)
		}
	}
}

// ingestBytes appends shipped bytes to the reassembly buffer and applies
// every complete WAL record in it. Frames split records arbitrarily (the
// leader ships fixed-size chunks), so the record framing is re-parsed
// here with the same layout and sanity bounds the WAL itself uses.
func (f *Follower) ingestBytes(p []byte) error {
	f.pend = append(f.pend, p...)
	for {
		if len(f.pend) < 8 {
			return nil
		}
		length := binary.LittleEndian.Uint32(f.pend[0:4])
		want := binary.LittleEndian.Uint32(f.pend[4:8])
		if length == 0 || length > ingest.WALRecordMax {
			return resyncf("shipped record with implausible length %d", length)
		}
		if len(f.pend) < 8+int(length) {
			return nil
		}
		payload := f.pend[8 : 8+length]
		if got := crc32.ChecksumIEEE(payload); got != want {
			return resyncf("shipped record crc mismatch (got %08x, want %08x)", got, want)
		}
		m, err := ingest.DecodeMutation(payload)
		if err != nil {
			return resyncf("shipped record does not decode: %v", err)
		}
		// Local durability before visibility: once applied (and
		// especially once published), the record must survive a crash.
		if err := f.wal.Append(m); err != nil {
			return fmt.Errorf("local wal: %w", err)
		}
		if err := f.applyRecord(m, int64(8+length), true); err != nil {
			return err
		}
		f.pend = f.pend[8+int(length):]
	}
}

// applyRecord advances the chain by one record: mutations buffer into
// the delta, epoch markers compact + re-rank + publish. live is false
// during local-WAL recovery replay (the record is already durable).
func (f *Follower) applyRecord(m ingest.Mutation, size int64, live bool) error {
	f.streamOff += size
	f.localWALOff += size
	f.localOffA.Store(f.streamOff)
	f.recApplied.Add(1)
	if live {
		mRecordsApplied.Inc()
	}
	if m.Kind != ingest.KindEpoch {
		f.delta = append(f.delta, m)
		return nil
	}
	return f.applyMarker(m.Epoch)
}

// applyMarker is the follower half of the determinism contract (see
// ingest.KindEpoch): for a full marker, compact exactly Count buffered
// mutations, rank at the marker's RankedAt with the seeded tracker, and
// publish the marker's epoch; for a push marker (MarkPush), replay the
// leader's incremental update over the same mutations instead. Any
// disagreement with the local chain means the stream and the state have
// diverged — resync rather than guess.
func (f *Follower) applyMarker(mark ingest.EpochMark) error {
	if mark.Epoch != f.epochV+1 {
		return resyncf("marker for epoch %d after local epoch %d", mark.Epoch, f.epochV)
	}
	if mark.Flags&ingest.MarkPush != 0 {
		return f.applyPushMarker(mark)
	}
	if int(mark.Count) != len(f.delta)-f.applied {
		return resyncf("marker for epoch %d covers %d mutations, %d buffered", mark.Epoch, mark.Count, len(f.delta)-f.applied)
	}
	net := f.base
	if len(f.delta) > 0 {
		b := graph.NewBuilderFrom(f.base)
		for _, m := range f.delta {
			switch m.Kind {
			case ingest.KindPaper:
				if _, err := b.AddPaper(m.Paper.ID, m.Paper.Year, m.Paper.Authors, m.Paper.Venue); err != nil {
					return resyncf("compacting shipped mutations: %v", err)
				}
			case ingest.KindCitation:
				b.AddEdge(m.Citation.Citing, m.Citation.Cited)
			}
		}
		var err error
		if net, err = b.Build(); err != nil {
			return resyncf("compacting shipped mutations: %v", err)
		}
	}
	res, err := f.tracker.Update(net, mark.RankedAt)
	if err != nil {
		return fmt.Errorf("ranking epoch %d: %w", mark.Epoch, err)
	}
	positions := make([]int, net.N())
	for pos, idx := range metrics.Ordering(res.Scores) {
		positions[idx] = pos
	}
	f.base, f.delta = net, nil
	f.applied, f.pusher = 0, nil
	f.epochV, f.rankedAt = mark.Epoch, mark.RankedAt
	f.markerLeaderOff, f.markerLocalOff = f.streamOff, f.localWALOff
	r := &ingest.Ranking{
		Epoch:     mark.Epoch,
		Net:       net,
		Result:    res,
		Positions: positions,
		Stats:     net.ComputeStats(),
		RankedAt:  mark.RankedAt,
		Impact:    impact.ForRanking(net, res.Scores, mark.RankedAt, f.impactCfg, f.logf),
	}
	f.lastFull = r
	f.ranking.Store(r)
	f.localEpochA.Store(mark.Epoch)
	mEpochsApplied.Inc()
	f.observeLag()
	return nil
}

// applyPushMarker replays one incremental (push) epoch: feed the new
// buffered citations to a core.Pusher seeded from the last full epoch's
// exact scores, settle to the leader's shipped tolerance, and publish.
// The pusher is deterministic and serial, so the published scores are
// bit-identical to the leader's. The durable save point deliberately
// stays at the last full boundary — recovery re-replays push epochs
// from the local WAL, so approximate state is never the anchor.
func (f *Follower) applyPushMarker(mark ingest.EpochMark) error {
	newMuts := f.delta[f.applied:]
	if int(mark.Count) != len(newMuts) {
		return resyncf("push marker for epoch %d covers %d mutations, %d buffered", mark.Epoch, mark.Count, len(newMuts))
	}
	if mark.RankedAt != f.rankedAt {
		return resyncf("push marker for epoch %d moves ranking time %d → %d", mark.Epoch, f.rankedAt, mark.RankedAt)
	}
	if f.pushTol <= 0 {
		return resyncf("push marker for epoch %d but no push tolerance from bootstrap", mark.Epoch)
	}
	if f.pusher == nil {
		if f.applied != 0 || f.lastFull == nil || f.lastFull.Net != f.base {
			return resyncf("push marker for epoch %d without a full-epoch anchor", mark.Epoch)
		}
		pu, err := core.NewPusher(f.base, f.rankedAt, f.wp.params(f.cfg.Workers), core.ReplayPushConfig(f.pushTol), f.lastFull.Result.Scores)
		if err != nil {
			return resyncf("push seed for epoch %d: %v", mark.Epoch, err)
		}
		f.pusher = pu
	}
	for _, m := range newMuts {
		if m.Kind != ingest.KindCitation {
			return resyncf("push marker for epoch %d covers a non-citation mutation", mark.Epoch)
		}
		ci, okc := f.base.Lookup(m.Citation.Citing)
		ti, okt := f.base.Lookup(m.Citation.Cited)
		if !okc || !okt {
			return resyncf("push epoch %d cites unknown paper %q→%q", mark.Epoch, m.Citation.Citing, m.Citation.Cited)
		}
		if err := f.pusher.AddCitation(ci, ti); err != nil {
			return resyncf("push epoch %d: %v", mark.Epoch, err)
		}
	}
	st, err := f.pusher.Settle()
	if err != nil {
		return resyncf("push epoch %d settle: %v", mark.Epoch, err)
	}
	scores := f.pusher.CopyScores()
	bound := f.pusher.Bound()
	positions := make([]int, len(scores))
	for pos, idx := range metrics.Ordering(scores) {
		positions[idx] = pos
	}
	f.applied = len(f.delta)
	f.epochV = mark.Epoch
	// Mirror the leader's push publication (ingest.tryPushLocked) so the
	// whole Ranking — not just the scores — matches.
	stats := f.lastFull.Stats
	stats.Edges = f.lastFull.Stats.Edges + f.applied
	if stats.Papers > 0 {
		stats.MeanOutDeg = float64(stats.Edges) / float64(stats.Papers)
	}
	f.ranking.Store(&ingest.Ranking{
		Epoch: mark.Epoch,
		Net:   f.lastFull.Net,
		Result: &core.Result{
			Scores:     scores,
			Iterations: st.Pushes,
			Converged:  true,
			Residuals:  []float64{bound},
			Attention:  f.lastFull.Result.Attention,
			Recency:    f.lastFull.Result.Recency,
		},
		Positions:   positions,
		Stats:       stats,
		RankedAt:    mark.RankedAt,
		Incremental: true,
		Staleness:   bound,
		Impact:      f.lastFull.Impact,
	})
	f.localEpochA.Store(mark.Epoch)
	mEpochsApplied.Inc()
	mPushEpochsApplied.Inc()
	f.observeLag()
	return nil
}

func (f *Follower) observeLag() {
	local, leader := f.localEpochA.Load(), f.leaderEpoch.Load()
	if leader > local {
		mEpochLag.Set(float64(leader - local))
	} else {
		mEpochLag.Set(0)
	}
}
