package replication

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"attrank/internal/impact"
	"attrank/internal/ingest"
)

// startImpactLeader is startPushLeader with the indicator layer enabled,
// so full epochs publish impact classes and push epochs carry them
// forward.
func startImpactLeader(t *testing.T) (*ingest.Ingester, *httptest.Server) {
	t.Helper()
	ing, err := ingest.Open(pushNet(t), ingest.Config{
		Dir:         t.TempDir(),
		Params:      testParams(),
		RerankAfter: 1,
		RerankEvery: time.Millisecond,
		PushTol:     1e-8,
		Impact:      impact.Config{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	l := NewLeader(ing, LeaderConfig{Poll: time.Millisecond, Heartbeat: 20 * time.Millisecond})
	srv := httptest.NewServer(l.Handler())
	t.Cleanup(srv.Close)
	return ing, srv
}

// assertImpactIdentical requires the follower's impact state at the
// leader's current epoch to be bit-identical per external id: every
// indicator's score bits, thresholds and class, plus the epoch-level
// window/alpha/iteration diagnostics.
func assertImpactIdentical(t *testing.T, ing *ingest.Ingester, f *Follower) {
	t.Helper()
	assertIdentical(t, ing, f)
	lead, loc := ing.Ranking(), f.Ranking()
	li, fi := lead.Impact, loc.Impact
	if li == nil || fi == nil {
		t.Fatalf("impact state missing: leader=%v follower=%v", li != nil, fi != nil)
	}
	if fi.Window != li.Window || fi.PRAlpha != li.PRAlpha ||
		fi.PRIterations != li.PRIterations || fi.PRConverged != li.PRConverged {
		t.Fatalf("epoch %d: impact header differs: follower {w=%d α=%v it=%d conv=%v}, leader {w=%d α=%v it=%d conv=%v}",
			lead.Epoch, fi.Window, fi.PRAlpha, fi.PRIterations, fi.PRConverged,
			li.Window, li.PRAlpha, li.PRIterations, li.PRConverged)
	}
	for ind := impact.Indicator(0); ind < impact.NumIndicators; ind++ {
		if li.Thresholds(ind) != fi.Thresholds(ind) {
			t.Fatalf("epoch %d: %s thresholds differ: follower %v, leader %v",
				lead.Epoch, ind, fi.Thresholds(ind), li.Thresholds(ind))
		}
		for i := int32(0); int(i) < lead.Net.N(); i++ {
			id := lead.Net.Paper(i).ID
			j, ok := loc.Net.Lookup(id)
			if !ok {
				t.Fatalf("follower is missing paper %q", id)
			}
			if ls, fs := li.Scores(ind)[i], fi.Scores(ind)[j]; ls != fs {
				t.Fatalf("paper %q: %s leader score %v, follower %v (not bit-identical)", id, ind, ls, fs)
			}
			if lc, fc := li.Class(ind, i), fi.Class(ind, j); lc != fc {
				t.Fatalf("paper %q: %s leader class %s, follower %s", id, ind, lc, fc)
			}
		}
	}
}

// TestFollowerReplaysImpactClasses: a multi-epoch round — bootstrap,
// full epochs, a push streak, a mid-stream kill and restart, and the
// reconciling full epoch — must reproduce identical class assignments
// on the follower with zero full resyncs. Classes on push epochs are
// the carried-forward full-boundary state on BOTH sides, so they too
// must match pointer-semantics-free, bit for bit.
func TestFollowerReplaysImpactClasses(t *testing.T) {
	ing, srv := startImpactLeader(t)
	cfg := followerConfig(t, srv.URL)
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap: the seeded boundary recomputes impact from shipped
	// exact scores.
	assertImpactIdentical(t, ing, f)

	// Full epochs (paper writes force the full path).
	for round := 0; round < 2; round++ {
		var muts []ingest.Mutation
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("n-%d-%d", round, i)
			muts = append(muts,
				ingest.Mutation{Kind: ingest.KindPaper, Paper: ingest.PaperMut{ID: id, Year: 2010}},
				ingest.Mutation{Kind: ingest.KindCitation, Citation: ingest.CitationMut{Citing: id, Cited: "s5"}})
		}
		if res, err := ing.ApplyBatch(muts); err != nil || len(res.Errors) > 0 {
			t.Fatalf("ApplyBatch: %v %+v", err, res)
		}
		if err := ing.Flush(); err != nil {
			t.Fatal(err)
		}
		assertImpactIdentical(t, ing, f)
	}

	// A push streak: classes stay as-of the last full epoch.
	fullImpact := f.Ranking().Impact
	leaderPush(t, ing, "s150", "s3")
	assertImpactIdentical(t, ing, f)
	loc := f.Ranking()
	if !loc.Incremental {
		t.Fatalf("epoch %d should be incremental", loc.Epoch)
	}
	if loc.Impact != fullImpact {
		t.Fatal("push epoch should carry the full-boundary impact state forward")
	}

	// Mid-stream kill; more epochs land while the follower is down.
	f.Kill()
	leaderPush(t, ing, "s165", "s8")
	if err := ing.Flush(); err != nil { // reconcile: fresh impact epoch
		t.Fatal(err)
	}

	re, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	assertImpactIdentical(t, ing, re)
	if loc := re.Ranking(); loc.Incremental || loc.Impact == nil {
		t.Fatalf("reconciled epoch: Incremental=%v Impact=%v", loc.Incremental, loc.Impact != nil)
	}
	if got := re.Info().FullResyncs + f.Info().FullResyncs; got != 0 {
		t.Fatalf("impact replay needed %d full resyncs, want 0", got)
	}
}

// TestImpactConfigSurvivesRecovery: the indicator configuration rides
// the durable state trio, so a restarted follower recomputes classes
// without re-bootstrapping — even when the next marker arrives before
// any reconnect to the leader.
func TestImpactConfigSurvivesRecovery(t *testing.T) {
	ing, srv := startImpactLeader(t)
	cfg := followerConfig(t, srv.URL)
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertImpactIdentical(t, ing, f)
	if err := f.Close(); err != nil { // clean shutdown persists state.json
		t.Fatal(err)
	}

	re, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { re.Close() })
	// The recovered seed boundary must already carry impact state (it is
	// recomputed locally from the saved exact vectors, not re-shipped).
	if re.Ranking() == nil || re.Ranking().Impact == nil {
		t.Fatal("recovered follower lost its impact state")
	}
	assertImpactIdentical(t, ing, re)
	if got := re.Info().FullResyncs; got != 0 {
		t.Fatalf("recovery needed %d full resyncs", got)
	}
}

// TestImpactDisabledShipsNoConfig: a leader without indicators ships no
// impact config and the follower publishes nil impact state.
func TestImpactDisabledShipsNoConfig(t *testing.T) {
	ing, srv := startLeader(t)
	f, err := StartFollower(followerConfig(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	assertIdentical(t, ing, f)
	if f.Ranking().Impact != nil {
		t.Fatal("follower computed impact state the leader never enabled")
	}
}
