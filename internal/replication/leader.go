package replication

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"attrank/internal/dataio"
	"attrank/internal/ingest"
)

// LeaderConfig tunes the leader's shipping endpoints. The zero value is
// production-ready.
type LeaderConfig struct {
	// Chunk is the data-frame payload size (default 64 KiB). Each chunk
	// read holds the ingester lock, so much larger values would stall
	// writers.
	Chunk int
	// Poll is how long a stream sleeps when it has caught up with the
	// durable end of the log (default 5ms).
	Poll time.Duration
	// Heartbeat is the cadence of epoch/offset heartbeats on an idle
	// stream (default 500ms). Heartbeats are what keep a follower's lag
	// measurement honest when no writes are flowing.
	Heartbeat time.Duration
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Leader serves the replication wire protocol for one Ingester. Mount
// Handler under /repl/ (the service layer does this via
// Server.AttachReplication).
type Leader struct {
	ing  *ingest.Ingester
	cfg  LeaderConfig
	logf func(string, ...any)
}

// NewLeader wraps an ingester with the replication endpoints.
func NewLeader(ing *ingest.Ingester, cfg LeaderConfig) *Leader {
	if cfg.Chunk <= 0 {
		cfg.Chunk = 64 << 10
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 5 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Leader{ing: ing, cfg: cfg, logf: logf}
}

// Handler returns the /repl/* endpoints.
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(statePath, l.handleState)
	mux.HandleFunc(walPath, l.handleWAL)
	return mux
}

// handleState streams a bootstrap: header line, corpus, score vectors.
// The ReplState call guarantees the cursor in the header matches the
// payload — a follower that seeds from this response and then streams
// from header.Offset misses nothing and re-applies nothing.
func (l *Leader) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rank, cur, err := l.ing.ReplState()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	hdr := stateHeader{
		Instance: cur.Instance,
		Gen:      cur.Gen,
		Offset:   cur.Offset,
		Epoch:    cur.Epoch,
		RankedAt: rank.RankedAt,
		Papers:   rank.Net.N(),
		Params:   wireParamsOf(l.ing.Params()),
		PushTol:  l.ing.PushTol(),
		Impact:   wireImpactOf(l.ing.ImpactConfig()),
	}
	if err := writeHeader(w, hdr); err != nil {
		return // client gone; nothing to clean up
	}
	if err := dataio.WriteBinary(w, rank.Net); err != nil {
		return
	}
	for _, v := range [][]float64{rank.Result.Scores, rank.Result.Attention, rank.Result.Recency} {
		if err := writeVector(w, v); err != nil {
			return
		}
	}
	mBootstrapsServed.Inc()
	l.logf("repl: bootstrap served: epoch %d, %d papers, offset %d", hdr.Epoch, hdr.Papers, hdr.Offset)
}

// handleWAL streams log bytes from (instance, gen, from) until the
// client goes away or the generation rotates. A cursor the leader cannot
// serve — wrong instance (leader restarted) or wrong generation (log
// compacted) — answers 409 so the follower knows to re-bootstrap rather
// than retry.
func (l *Leader) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	instance, err1 := strconv.ParseUint(q.Get("instance"), 10, 64)
	gen, err2 := strconv.ParseUint(q.Get("gen"), 10, 64)
	from, err3 := strconv.ParseInt(q.Get("from"), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || from < ingest.WALHeaderSize {
		http.Error(w, "bad cursor: need instance, gen and from=<offset>", http.StatusBadRequest)
		return
	}
	cur := l.ing.ReplCursor()
	if instance != cur.Instance || gen != cur.Gen {
		http.Error(w, "cursor from another instance or generation; re-bootstrap via /repl/state",
			http.StatusConflict)
		return
	}
	// The stream outlives any per-request write timeout the surrounding
	// http.Server sets for ordinary responses; followers resume cleanly
	// if clearing it is unsupported and the stream gets cut anyway.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)

	mStreamsOpen.Add(1)
	defer mStreamsOpen.Add(-1)
	l.logf("repl: stream open from offset %d (gen %d)", from, gen)

	ctx := r.Context()
	buf := make([]byte, l.cfg.Chunk)
	// An immediate heartbeat tells the follower the leader's epoch
	// before any data flows.
	lastBeat := time.Time{}
	beat := func() bool {
		c := l.ing.ReplCursor()
		if err := WriteFrame(w, frameHeartbeat, heartbeatPayload(c.Epoch, c.Offset)); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		lastBeat = time.Now()
		return true
	}
	if !beat() {
		return
	}
	off := from
	for {
		if ctx.Err() != nil {
			return
		}
		n, err := l.ing.ReadWALAt(gen, off, buf)
		if n > 0 {
			if werr := WriteFrame(w, frameData, buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			off += int64(n)
			mBytesShipped.Add(int64(n))
			continue
		}
		switch {
		case err == nil || err == io.EOF:
			// Caught up with the durable end: heartbeat if due, then
			// poll for new appends.
			if time.Since(lastBeat) >= l.cfg.Heartbeat && !beat() {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(l.cfg.Poll):
			}
		case errors.Is(err, ingest.ErrWALRotated):
			// A snapshot compacted the log away mid-stream. Closing the
			// stream sends the follower back through reconnect, where
			// the 409 tells it to re-bootstrap.
			l.logf("repl: stream at offset %d ended: generation rotated", off)
			return
		default:
			l.logf("repl: stream read at offset %d: %v", off, err)
			return
		}
	}
}
