package replication

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"attrank/internal/core"
	"attrank/internal/graph"
	"attrank/internal/ingest"
)

func testParams() core.Params {
	return core.Params{Alpha: 0.3, Beta: 0.4, Gamma: 0.3, AttentionYears: 3, W: -0.3}
}

func seedNet(t *testing.T) *graph.Network {
	t.Helper()
	b := graph.NewBuilder()
	add := func(id string, year int, authors []string, venue string) {
		t.Helper()
		if _, err := b.AddPaper(id, year, authors, venue); err != nil {
			t.Fatal(err)
		}
	}
	add("old", 1990, []string{"alice"}, "V")
	add("mid", 1994, []string{"bob"}, "V")
	add("hot", 1996, []string{"carol"}, "W")
	for _, e := range [][2]string{{"mid", "old"}, {"hot", "old"}, {"hot", "mid"}} {
		b.AddEdge(e[0], e[1])
	}
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// startLeader opens a live ingester over a fresh directory and serves
// its replication endpoints. Debounce is pushed far out so tests drive
// epochs explicitly with Flush.
func startLeader(t *testing.T) (*ingest.Ingester, *httptest.Server) {
	t.Helper()
	ing, err := ingest.Open(seedNet(t), ingest.Config{
		Dir:         t.TempDir(),
		Params:      testParams(),
		RerankAfter: 1 << 20,
		RerankEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ing.Close() })
	l := NewLeader(ing, LeaderConfig{Poll: time.Millisecond, Heartbeat: 20 * time.Millisecond})
	srv := httptest.NewServer(l.Handler())
	t.Cleanup(srv.Close)
	return ing, srv
}

func followerConfig(t *testing.T, leaderURL string) FollowerConfig {
	t.Helper()
	return FollowerConfig{
		Leader:   leaderURL,
		Dir:      t.TempDir(),
		RetryMin: 2 * time.Millisecond,
		RetryMax: 20 * time.Millisecond,
	}
}

// leaderWrite applies a small batch of new papers citing the seed corpus
// and flushes, producing exactly one new epoch.
func leaderWrite(t *testing.T, ing *ingest.Ingester, tag string, n int) {
	t.Helper()
	var muts []ingest.Mutation
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("p-%s-%d", tag, i)
		muts = append(muts,
			ingest.Mutation{Kind: ingest.KindPaper, Paper: ingest.PaperMut{ID: id, Year: 1997 + i%3, Authors: []string{"dave"}, Venue: "V"}},
			ingest.Mutation{Kind: ingest.KindCitation, Citation: ingest.CitationMut{Citing: id, Cited: "hot"}})
	}
	if res, err := ing.ApplyBatch(muts); err != nil || len(res.Errors) > 0 {
		t.Fatalf("ApplyBatch: %v %+v", err, res)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
}

// assertIdentical requires the follower's view at the leader's current
// epoch to be bit-identical: same papers, same scores (==, not ≈), same
// positions, same effective ranking time.
func assertIdentical(t *testing.T, ing *ingest.Ingester, f *Follower) {
	t.Helper()
	lead := ing.Ranking()
	if err := f.WaitEpoch(lead.Epoch, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	loc := f.Ranking()
	if loc.Epoch != lead.Epoch {
		t.Fatalf("follower at epoch %d, leader at %d", loc.Epoch, lead.Epoch)
	}
	if loc.Net.N() != lead.Net.N() {
		t.Fatalf("follower corpus %d papers, leader %d", loc.Net.N(), lead.Net.N())
	}
	if loc.RankedAt != lead.RankedAt {
		t.Fatalf("follower ranked at %d, leader at %d", loc.RankedAt, lead.RankedAt)
	}
	for i := int32(0); int(i) < lead.Net.N(); i++ {
		id := lead.Net.Paper(i).ID
		j, ok := loc.Net.Lookup(id)
		if !ok {
			t.Fatalf("follower is missing paper %q", id)
		}
		if ls, fs := lead.Result.Scores[i], loc.Result.Scores[j]; ls != fs {
			t.Fatalf("paper %q: leader score %v, follower score %v (epoch %d)", id, ls, fs, lead.Epoch)
		}
		if lp, fp := lead.Positions[i], loc.Positions[j]; lp != fp {
			t.Fatalf("paper %q: leader rank %d, follower rank %d", id, lp, fp)
		}
	}
}

func TestFollowerTracksLeaderBitIdentical(t *testing.T) {
	ing, srv := startLeader(t)
	f, err := StartFollower(followerConfig(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	assertIdentical(t, ing, f) // bootstrap view

	for round := 0; round < 4; round++ {
		leaderWrite(t, ing, fmt.Sprintf("r%d", round), 3)
		assertIdentical(t, ing, f)
	}
	if got := f.Info().FullResyncs; got != 0 {
		t.Errorf("FullResyncs = %d, want 0", got)
	}
}

func TestFollowerCrashRecoveryResumesWithoutResync(t *testing.T) {
	ing, srv := startLeader(t)
	cfg := followerConfig(t, srv.URL)
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	leaderWrite(t, ing, "before", 3)
	assertIdentical(t, ing, f)
	f.Kill() // crash: no state save

	// The leader moves on while the follower is down.
	leaderWrite(t, ing, "during", 4)

	f2, err := StartFollower(cfg) // same directory
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	assertIdentical(t, ing, f2)
	if got := f2.Info().FullResyncs; got != 0 {
		t.Errorf("FullResyncs after crash restart = %d, want 0 (local WAL replay + stream resume)", got)
	}
}

func TestFollowerGracefulRestartResumesWithoutResync(t *testing.T) {
	ing, srv := startLeader(t)
	cfg := followerConfig(t, srv.URL)
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	leaderWrite(t, ing, "a", 2)
	assertIdentical(t, ing, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	leaderWrite(t, ing, "b", 2)
	f2, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	assertIdentical(t, ing, f2)
	if got := f2.Info().FullResyncs; got != 0 {
		t.Errorf("FullResyncs = %d, want 0", got)
	}
}

func TestFollowerFullResyncOnWALRotation(t *testing.T) {
	ing, srv := startLeader(t)
	f, err := StartFollower(followerConfig(t, srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	leaderWrite(t, ing, "pre", 2)
	assertIdentical(t, ing, f)

	// Snapshot compaction rotates the WAL generation: the follower's
	// cursor is now invalid and it must re-bootstrap.
	if err := ing.Snapshot(); err != nil {
		t.Fatal(err)
	}
	leaderWrite(t, ing, "post", 3)
	assertIdentical(t, ing, f)
	if got := f.Info().FullResyncs; got == 0 {
		t.Errorf("FullResyncs = 0, want >= 1 after WAL rotation")
	}
}

func TestFollowerRejectsUnexpectedParams(t *testing.T) {
	_, srv := startLeader(t)
	cfg := followerConfig(t, srv.URL)
	wrong := testParams()
	wrong.Alpha, wrong.Beta = wrong.Beta, wrong.Alpha
	cfg.Expect = &wrong
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if le := f.Info().LastError; strings.Contains(le, "differ") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no params-mismatch error; info = %+v", f.Info())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if f.Ranking() != nil {
		t.Error("follower published a ranking despite the params mismatch")
	}
}

// flakyTransport cuts the body of the first /repl/wal response after
// budget bytes, simulating a connection dying mid-frame at an arbitrary
// byte position. Later streams (and all bootstraps) flow untouched.
type flakyTransport struct {
	base   http.RoundTripper
	budget int64
	used   atomic.Bool
}

func (ft *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := ft.base.RoundTrip(req)
	if err != nil || !strings.HasPrefix(req.URL.Path, "/repl/wal") {
		return resp, err
	}
	if !ft.used.CompareAndSwap(false, true) {
		return resp, err
	}
	resp.Body = &cutBody{rc: resp.Body, left: ft.budget}
	return resp, nil
}

type cutBody struct {
	rc   io.ReadCloser
	left int64
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= int64(n)
	return n, err
}

func (b *cutBody) Close() error { return b.rc.Close() }

// TestFollowerSurvivesStreamCutAtEveryByte interrupts the first WAL
// stream after every possible byte budget — covering a cut inside the
// frame header, at each record boundary, and mid-record — and requires
// the follower to resume to bit-identical state without a full resync.
func TestFollowerSurvivesStreamCutAtEveryByte(t *testing.T) {
	ing, srv := startLeader(t)
	// The per-round shipped bytes: a batch of records plus a marker,
	// framed. Budgets sweep past the whole round with slack for the
	// heartbeat and frame headers.
	step := 1
	if testing.Short() {
		step = 13
	}
	const budgetMax = 220
	for budget := 0; budget <= budgetMax; budget += step {
		cfg := followerConfig(t, srv.URL)
		cfg.Client = &http.Client{Transport: &flakyTransport{base: http.DefaultTransport.(*http.Transport).Clone(), budget: int64(budget)}}
		f, err := StartFollower(cfg)
		if err != nil {
			t.Fatal(err)
		}
		leaderWrite(t, ing, fmt.Sprintf("cut%d", budget), 2)
		assertIdentical(t, ing, f)
		if got := f.Info().FullResyncs; got != 0 {
			t.Errorf("budget %d: FullResyncs = %d, want 0", budget, got)
		}
		f.Close()
	}
}
