// Command attrank-gen generates the synthetic citation datasets that
// stand in for the paper's four evaluation corpora and writes them in the
// repository's TSV or JSON network format.
//
// Usage:
//
//	attrank-gen -dataset dblp -out dblp.tsv [-scale 1] [-seed 0]
//	attrank-gen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"attrank/internal/dataio"
	"attrank/internal/synth"
	"attrank/internal/textplot"
)

func main() {
	var (
		dataset     = flag.String("dataset", "", "dataset profile: hep-th, aps, pmc, dblp")
		out         = flag.String("out", "", "output file (.tsv, .json or .anb; append .gz to compress)")
		scale       = flag.Float64("scale", 1, "size multiplier for the profile")
		seed        = flag.Int64("seed", 0, "RNG seed (0 = profile default)")
		list        = flag.Bool("list", false, "list the available profiles and exit")
		dot         = flag.String("dot", "", "also write a Graphviz DOT of the most-cited core to this file")
		dotSize     = flag.Int("dot-size", 60, "number of most-cited papers in the DOT core")
		profileFile = flag.String("profile", "", "generate from a custom JSON profile file instead of -dataset")
	)
	flag.Parse()

	if *list {
		printProfiles()
		return
	}
	if (*dataset == "" && *profileFile == "") || *out == "" {
		fmt.Fprintln(os.Stderr, "attrank-gen: -out plus either -dataset or -profile are required (or use -list)")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*dataset, *profileFile, *out, *scale, *seed, *dot, *dotSize); err != nil {
		fmt.Fprintln(os.Stderr, "attrank-gen:", err)
		os.Exit(1)
	}
}

func run(dataset, profileFile, out string, scale float64, seed int64, dot string, dotSize int) error {
	var profile synth.Profile
	var err error
	if profileFile != "" {
		profile, err = synth.LoadProfileFile(profileFile)
	} else {
		profile, err = synth.ProfileByName(dataset)
	}
	if err != nil {
		return err
	}
	if scale != 1 {
		profile = profile.Scale(scale)
	}
	if seed != 0 {
		profile.Seed = seed
	}
	net, err := synth.Generate(profile)
	if err != nil {
		return err
	}
	if err := dataio.SaveFile(out, net); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", out, net.ComputeStats())
	if dot != "" {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		werr := net.WriteDOT(f, dotSize)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("wrote %s (top-%d core)\n", dot, dotSize)
	}
	return nil
}

func printProfiles() {
	rows := make([][]string, 0, 4)
	for _, p := range synth.Profiles() {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d-%d", p.StartYear, p.EndYear),
			fmt.Sprintf("%d", p.Papers),
			fmt.Sprintf("%.1f", p.RefMean),
			fmt.Sprintf("%.1f", p.RecencyTheta),
			fmt.Sprintf("%d", p.Venues),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"profile", "years", "papers", "refs/paper", "recency θ", "venues"},
		rows,
	))
}
