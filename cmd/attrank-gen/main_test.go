package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"attrank/internal/dataio"
	"attrank/internal/synth"
)

func TestRunGeneratesLoadableFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "net.tsv")
	if err := run("hep-th", "", out, 0.05, 0, "", 0); err != nil {
		t.Fatal(err)
	}
	net, err := dataio.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() == 0 || net.Edges() == 0 {
		t.Errorf("generated network empty: %d/%d", net.N(), net.Edges())
	}
}

func TestRunBinaryFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "net.anb")
	if err := run("pmc", "", out, 0.03, 42, "", 0); err != nil {
		t.Fatal(err)
	}
	net, err := dataio.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumVenues() == 0 {
		t.Error("pmc venues lost in binary round trip")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("nope", "", filepath.Join(t.TempDir(), "x.tsv"), 1, 0, "", 0); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunUnwritablePath(t *testing.T) {
	if err := run("hep-th", "", filepath.Join(t.TempDir(), "missing-dir", "x.tsv"), 0.03, 0, "", 0); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestPrintProfilesDoesNotPanic(t *testing.T) {
	printProfiles()
}

func TestRunWritesDOT(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "net.tsv")
	dot := filepath.Join(dir, "net.dot")
	if err := run("hep-th", "", out, 0.03, 0, dot, 20); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph citations {") {
		t.Errorf("bad DOT output: %.60s", data)
	}
}

func TestRunCustomProfile(t *testing.T) {
	dir := t.TempDir()
	p := synth.HepTh()
	p.Name = "custom"
	p.Papers = 200
	p.AuthorPool = 80
	profPath := filepath.Join(dir, "profile.json")
	f, err := os.Create(profPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := synth.WriteProfile(f, p); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "custom.tsv")
	if err := run("", profPath, out, 1, 0, "", 0); err != nil {
		t.Fatal(err)
	}
	net, err := dataio.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 200 {
		t.Errorf("custom profile generated %d papers, want 200", net.N())
	}
}
