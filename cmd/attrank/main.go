// Command attrank ranks the papers of a citation network by their
// estimated short-term impact and prints the top of the ranking.
//
// Usage:
//
//	attrank -in network.tsv [-method AR] [-top 20] [-alpha 0.2 -beta 0.5 -gamma 0.3 -y 3] [-now 2016] [-explain]
//
// Methods: AR (AttRank, default), NO-ATT, ATT-ONLY, PR, CC, CR, FR, RAM,
// ECM, WSDM, HITS, KATZ, TPR. AttRank's w is fitted from the network
// unless -w is given; -explain decomposes each top paper's score into its
// flow / attention / recency components.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"attrank/internal/baselines"
	"attrank/internal/core"
	"attrank/internal/dataio"
	"attrank/internal/graph"
	"attrank/internal/metrics"
	"attrank/internal/textplot"
)

func main() {
	var (
		in      = flag.String("in", "", "input network file (.tsv or .json)")
		method  = flag.String("method", "AR", "ranking method: AR, NO-ATT, ATT-ONLY, PR, CC, CR, FR, RAM, ECM, WSDM, HITS, KATZ, TPR")
		top     = flag.Int("top", 20, "number of papers to print")
		now     = flag.Int("now", 0, "current time tN (default: newest year in the network)")
		alpha   = flag.Float64("alpha", 0.2, "AttRank α / method-specific α")
		beta    = flag.Float64("beta", 0.5, "AttRank β / method-specific β")
		gamma   = flag.Float64("gamma", 0.3, "AttRank γ / RAM-ECM γ")
		y       = flag.Int("y", 3, "AttRank attention window in years")
		w       = flag.Float64("w", 0, "AttRank recency exponent (0 = fit from data)")
		tau     = flag.Float64("tau", 2.6, "CiteRank τdir")
		rho     = flag.Float64("rho", -0.62, "FutureRank ρ")
		iters   = flag.Int("iters", 4, "WSDM iteration count")
		explain = flag.Bool("explain", false, "decompose each top paper's AttRank score (AR methods only)")
		csvOut  = flag.String("csv", "", "also write the complete ranking as CSV to this file")
		workers = flag.Int("workers", 0, "AttRank power-iteration parallelism: 0 = serial reference kernel, N > 0 = fused kernel with N nnz-balanced partitions, negative = one per CPU core; scores are bit-identical either way")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "attrank: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *method, *top, *now, *alpha, *beta, *gamma, *y, *w, *tau, *rho, *iters, *workers, *explain, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "attrank:", err)
		os.Exit(1)
	}
}

func run(in, method string, top, now int, alpha, beta, gamma float64, y int, w, tau, rho float64, iters, workers int, explain bool, csvOut string) error {
	net, err := dataio.LoadFile(in)
	if err != nil {
		return err
	}
	if now == 0 {
		now = net.MaxYear()
	}
	fmt.Printf("loaded %s: %s\n", in, net.ComputeStats())

	scores, arResult, arParams, err := computeScores(net, now, method, alpha, beta, gamma, y, w, tau, rho, iters, workers)
	if err != nil {
		return err
	}

	order := metrics.TopK(scores, top)
	rows := make([][]string, 0, len(order))
	for i, idx := range order {
		p := net.Paper(int32(idx))
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			p.ID,
			fmt.Sprintf("%d", p.Year),
			fmt.Sprintf("%.3e", scores[idx]),
			fmt.Sprintf("%d", net.InDegree(int32(idx))),
			fmt.Sprintf("%d", net.CitationsIn(int32(idx), now-2, now)),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"#", "paper", "year", "score", "citations", "recent(3y)"},
		rows,
	))

	if explain {
		if arResult == nil {
			return fmt.Errorf("-explain requires an AttRank-family method (AR, NO-ATT, ATT-ONLY)")
		}
		fmt.Println("\nscore decomposition (flow = via references; attention = recent citations; recency = age):")
		for _, idx := range order {
			e, err := core.Explain(net, arResult, arParams, int32(idx))
			if err != nil {
				return err
			}
			fmt.Printf("  %-14s %s\n", net.Paper(int32(idx)).ID, e)
		}
	}

	if csvOut != "" {
		if err := writeRankingCSV(csvOut, net, scores, now); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", csvOut, net.N())
	}
	return nil
}

// writeRankingCSV dumps the complete ranking with per-paper context.
func writeRankingCSV(path string, net *graph.Network, scores []float64, now int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(f)
	werr := cw.Write([]string{"rank", "paper", "year", "score", "citations", "recent_3y"})
	for rank, idx := range metrics.Ordering(scores) {
		if werr != nil {
			break
		}
		p := net.Paper(int32(idx))
		werr = cw.Write([]string{
			strconv.Itoa(rank + 1),
			p.ID,
			strconv.Itoa(p.Year),
			strconv.FormatFloat(scores[idx], 'g', 10, 64),
			strconv.Itoa(net.InDegree(int32(idx))),
			strconv.Itoa(net.CitationsIn(int32(idx), now-2, now)),
		})
	}
	cw.Flush()
	if werr == nil {
		werr = cw.Error()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func computeScores(net *graph.Network, now int, method string, alpha, beta, gamma float64, y int, w, tau, rho float64, iters, workers int) ([]float64, *core.Result, core.Params, error) {
	plain := func(scores []float64, err error) ([]float64, *core.Result, core.Params, error) {
		return scores, nil, core.Params{}, err
	}
	switch method {
	case "AR", "NO-ATT", "ATT-ONLY":
		if w == 0 {
			fitted, err := core.FitWFromNetwork(net, 10)
			if err != nil {
				return nil, nil, core.Params{}, fmt.Errorf("fitting w: %w", err)
			}
			w = fitted
			fmt.Printf("fitted w = %.4f\n", w)
		}
		p := core.Params{Alpha: alpha, Beta: beta, Gamma: gamma, AttentionYears: y, W: w, Workers: workers}
		switch method {
		case "NO-ATT":
			p = p.NoAtt()
		case "ATT-ONLY":
			p = p.AttOnly()
		}
		res, err := core.Rank(net, now, p)
		if err != nil {
			return nil, nil, core.Params{}, err
		}
		fmt.Printf("%s converged in %d iterations\n", method, res.Iterations)
		fmt.Println(core.TelemetryLine())
		return res.Scores, res, p, nil
	case "PR":
		return plain(baselines.PageRank{Alpha: alpha}.Scores(net, now))
	case "CC":
		return plain(baselines.CitationCount{}.Scores(net, now))
	case "CR":
		return plain(baselines.CiteRank{Alpha: alpha, TauDir: tau}.Scores(net, now))
	case "FR":
		return plain(baselines.FutureRank{Alpha: alpha, Beta: beta, Gamma: gamma, Rho: rho}.Scores(net, now))
	case "RAM":
		return plain(baselines.RAM{Gamma: gamma}.Scores(net, now))
	case "ECM":
		return plain(baselines.ECM{Alpha: alpha, Gamma: gamma}.Scores(net, now))
	case "WSDM":
		return plain(baselines.WSDM{Alpha: alpha, Beta: beta, Iters: iters}.Scores(net, now))
	case "HITS":
		return plain(baselines.HITS{}.Scores(net, now))
	case "KATZ":
		return plain(baselines.Katz{Alpha: alpha}.Scores(net, now))
	case "TPR":
		return plain(baselines.TimeAwarePageRank{Alpha: alpha, Tau: tau}.Scores(net, now))
	default:
		return nil, nil, core.Params{}, fmt.Errorf("unknown method %q", method)
	}
}
