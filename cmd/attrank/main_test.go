package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"attrank/internal/dataio"
	"attrank/internal/synth"
)

func writeTestNet(t *testing.T) string {
	t.Helper()
	p := synth.DBLP()
	p.Papers = 400
	p.AuthorPool = 150
	net, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteTSV(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllMethods(t *testing.T) {
	path := writeTestNet(t)
	for _, method := range []string{"AR", "NO-ATT", "ATT-ONLY", "PR", "CC", "CR", "FR", "RAM", "ECM", "WSDM", "HITS", "KATZ", "TPR"} {
		t.Run(method, func(t *testing.T) {
			alpha, beta, gamma := 0.2, 0.5, 0.3
			switch method {
			case "PR", "TPR", "KATZ":
				alpha = 0.5
			case "CR":
				alpha = 0.5
			case "FR":
				alpha, beta, gamma = 0.4, 0.1, 0.5
			case "WSDM":
				alpha, beta = 1.7, 3
			case "RAM", "ECM":
				alpha, gamma = 0.3, 0.3
			}
			if err := run(path, method, 5, 0, alpha, beta, gamma, 3, 0, 2.6, -0.62, 4, 0, false, ""); err != nil {
				t.Fatalf("%s: %v", method, err)
			}
		})
	}
}

func TestRunExplain(t *testing.T) {
	path := writeTestNet(t)
	if err := run(path, "AR", 3, 0, 0.2, 0.5, 0.3, 3, -0.2, 2.6, -0.62, 4, 0, true, ""); err != nil {
		t.Fatal(err)
	}
	// Explain on a non-AR method must fail cleanly.
	if err := run(path, "CC", 3, 0, 0.2, 0.5, 0.3, 3, 0, 2.6, -0.62, 4, 0, true, ""); err == nil {
		t.Error("-explain with CC accepted")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestNet(t)
	if err := run(path, "BOGUS", 5, 0, 0.2, 0.5, 0.3, 3, 0, 2.6, -0.62, 4, 0, false, ""); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "absent.tsv"), "AR", 5, 0, 0.2, 0.5, 0.3, 3, 0, 2.6, -0.62, 4, 0, false, ""); err == nil {
		t.Error("missing file accepted")
	}
	// Invalid AttRank parameters surface as errors.
	if err := run(path, "AR", 5, 0, 0.9, 0.9, 0.9, 3, -0.2, 2.6, -0.62, 4, 0, false, ""); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := writeTestNet(t)
	out := filepath.Join(t.TempDir(), "ranking.csv")
	if err := run(path, "AR", 3, 0, 0.2, 0.5, 0.3, 3, -0.2, 2.6, -0.62, 4, 0, false, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	net, err := dataio.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != net.N()+1 { // header + one row per paper
		t.Errorf("csv rows = %d, want %d", len(lines), net.N()+1)
	}
	if !strings.HasPrefix(lines[0], "rank,paper,year,score") {
		t.Errorf("bad header: %s", lines[0])
	}
}
