package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"attrank/internal/core"
	"attrank/internal/graph"
	"attrank/internal/impact"
	"attrank/internal/ingest"
	"attrank/internal/load"
	"attrank/internal/service"
	"attrank/internal/synth"
)

// serveReport is the schema of BENCH_service.json: the serving path
// under closed-loop load at 1×/2×/4× saturation (one saturation unit =
// workers equal to the full admitted capacity, executing + queued),
// plus a graceful-shutdown drain check.
type serveReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Papers      int    `json:"papers"`
	Edges       int    `json:"edges"`

	MaxInFlight int   `json:"max_inflight"`
	MaxQueue    int   `json:"max_queue"`
	DeadlineMS  int64 `json:"deadline_ms"`

	Levels []levelReport `json:"levels"`
	// DegradationP99 is accepted-p99(4×) / accepted-p99(1×) — the
	// overload layer's promise is that this stays ≤ 2 because excess
	// load is shed instead of queued without bound.
	DegradationP99 float64        `json:"degradation_p99"`
	Shutdown       shutdownReport `json:"shutdown"`
}

// levelReport is one sustained load level.
type levelReport struct {
	Multiplier int   `json:"multiplier"` // workers = multiplier × max_inflight
	Workers    int   `json:"workers"`
	DurationMS int64 `json:"duration_ms"`

	Total     int64 `json:"total"`
	OK        int64 `json:"ok"`
	Shed      int64 `json:"shed"`
	ClientErr int64 `json:"client_err"`
	ServerErr int64 `json:"server_err"`
	Transport int64 `json:"transport_err"`

	ByStatus map[int]int64 `json:"by_status"`

	AcceptedRPS float64 `json:"accepted_rps"`
	OfferedRPS  float64 `json:"offered_rps"`
	ShedRate    float64 `json:"shed_rate"`

	// Accepted-request latency (2xx only), microseconds.
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
	MeanUS int64 `json:"mean_us"`
	// Shed-response latency p99 — rejections must stay cheap.
	RejectP99US int64 `json:"reject_p99_us"`
}

// shutdownReport is the graceful-drain phase: load keeps running while
// the server shuts down; requests in flight at the shutdown instant
// must complete, not drop.
type shutdownReport struct {
	Workers int   `json:"workers"`
	DrainMS int64 `json:"drain_ms"`
	// Dropped counts requests that were in flight well before shutdown
	// began (≥10ms) yet failed at the transport level. Must be zero.
	Dropped int64 `json:"dropped_in_flight"`
	// Spanning counts 2xx responses whose request straddled the
	// shutdown instant — proof the drain actually completed work.
	Spanning int64 `json:"completed_spanning_shutdown"`
	// LateErrors counts transport failures from requests issued at or
	// after shutdown; those are expected (the listener is closed).
	LateErrors int64 `json:"late_errors"`
}

// runServe builds a live in-process server over a seeded synthetic
// corpus and drives the closed-loop load harness against it.
func runServe(papers int, out string, levelDur time.Duration) error {
	prof, err := synth.ProfileByName("dblp")
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	corpus, err := synth.GenerateSeeded(prof, 1)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "attrank-bench-serve-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ing, err := ingest.Open(corpus, ingest.Config{
		Dir:           dir,
		Params:        core.Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: 1},
		RerankAfter:   2048,
		RerankEvery:   time.Second,
		SnapshotEvery: -1,
		// The impact layer is on so the measured read mix includes the
		// /v1/impact/ endpoints — the degradation bound below covers them.
		Impact: impact.Config{Enabled: true, Workers: 1},
	})
	if err != nil {
		return err
	}
	defer ing.Close()

	// Load generator and server share this process. At GOMAXPROCS=1 that
	// serializes them: a computing handler starves the connection
	// goroutines of the CPU slice they need to even reach the admission
	// gate, so no queue ever forms and admission control measures
	// nothing. A few scheduler threads restore concurrent arrivals (on a
	// multi-core host this is already the case).
	if runtime.GOMAXPROCS(0) < 8 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	}

	srv := service.NewLive(ing)
	srv.SetLogf(nil) // the per-request log would dominate a load test
	// Admission sized to the physical cores, not the (possibly inflated)
	// GOMAXPROCS: in-flight requests beyond the hardware's parallelism
	// wait in the run queue, where admission cannot bound their latency.
	// Half-depth queue: waiting costs ~half a mean service time, which
	// keeps the accepted tail flat under overload (DESIGN.md §10).
	maxInFlight := 4 * runtime.NumCPU()
	adm := service.AdmissionConfig{MaxInFlight: maxInFlight, MaxQueue: maxInFlight / 2, Deadline: 2 * time.Second}
	srv.ConfigureAdmission(adm)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srvCtx, srvCancel := context.WithCancel(context.Background())
	defer srvCancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- service.ServeListener(srvCtx, ln, srv.Handler(), service.ServeOptions{})
	}()
	base := "http://" + ln.Addr().String()
	ids := sampleIDs(corpus, 256)

	r := serveReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Papers:      corpus.N(),
		Edges:       corpus.Edges(),
		MaxInFlight: maxInFlight,
		MaxQueue:    maxInFlight / 2,
		DeadlineMS:  (2 * time.Second).Milliseconds(),
	}

	// Warm-up: prime the operator cache, the connection pool paths and
	// the first re-rank before anything is measured.
	fmt.Printf("warming up…\n")
	if _, err := load.Run(context.Background(), load.Config{
		BaseURL: base, Workers: maxInFlight, Duration: levelDur / 2,
		Seed: 7, WriteRatio: 0.1, ImpactRatio: 0.15, BatchSize: 8, PaperIDs: ids, IDPrefix: "warm",
	}); err != nil {
		return err
	}

	// Saturation unit: the full admitted capacity (executing + queued).
	// 1× fills the system exactly (near-zero shed, honest baseline tail);
	// 2× and 4× push past it, so the delta is pure overload response.
	capacity := maxInFlight + maxInFlight/2
	for _, mult := range []int{1, 2, 4} {
		workers := mult * capacity
		fmt.Printf("level %d× saturation: %d workers for %s…\n", mult, workers, levelDur)
		res, err := load.Run(context.Background(), load.Config{
			BaseURL: base, Workers: workers, Duration: levelDur,
			Seed: int64(100 + mult), WriteRatio: 0.1, ImpactRatio: 0.15, BatchSize: 8,
			PaperIDs: ids, IDPrefix: fmt.Sprintf("l%d", mult),
			ShedBackoff: 10 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		lv := levelReport{
			Multiplier: mult,
			Workers:    workers,
			DurationMS: res.Elapsed.Milliseconds(),
			Total:      res.Total,
			OK:         res.OK,
			Shed:       res.Shed,
			ClientErr:  res.ClientErr,
			ServerErr:  res.ServerErr,
			Transport:  res.Transport,
			ByStatus:   res.ByStatus,

			AcceptedRPS: float64(res.OK) / res.Elapsed.Seconds(),
			OfferedRPS:  float64(res.Total) / res.Elapsed.Seconds(),
			ShedRate:    float64(res.Shed) / float64(res.Total),

			P50US:       res.Accepted.Quantile(0.50).Microseconds(),
			P95US:       res.Accepted.Quantile(0.95).Microseconds(),
			P99US:       res.Accepted.Quantile(0.99).Microseconds(),
			MaxUS:       res.Accepted.Max().Microseconds(),
			MeanUS:      res.Accepted.Mean().Microseconds(),
			RejectP99US: res.Rejected.Quantile(0.99).Microseconds(),
		}
		r.Levels = append(r.Levels, lv)
		fmt.Printf("  accepted %.0f rps (offered %.0f), shed %.1f%%, p50=%dµs p95=%dµs p99=%dµs\n",
			lv.AcceptedRPS, lv.OfferedRPS, 100*lv.ShedRate, lv.P50US, lv.P95US, lv.P99US)
	}
	if p1 := r.Levels[0].P99US; p1 > 0 {
		r.DegradationP99 = float64(r.Levels[len(r.Levels)-1].P99US) / float64(p1)
	}

	// Graceful-shutdown phase: keep the loop closed while the server
	// drains. A request counts as dropped only if it was in flight
	// comfortably before the shutdown instant (10ms guard against the
	// inherent race of a request hitting the listener as it closes) and
	// still failed at the transport level.
	fmt.Printf("graceful shutdown under load…\n")
	var shutdownAt, dropped, spanning, lateErrs atomic.Int64
	shutCtx, shutCancel := context.WithCancel(context.Background())
	defer shutCancel()
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		load.Run(shutCtx, load.Config{
			BaseURL: base, Workers: maxInFlight, Seed: 99,
			WriteRatio: 0.1, ImpactRatio: 0.15, BatchSize: 8, PaperIDs: ids, IDPrefix: "shut",
			OnSample: func(s load.Sample) {
				at := shutdownAt.Load()
				if at == 0 {
					return
				}
				if s.Err != nil {
					if s.Start.UnixNano() < at-(10*time.Millisecond).Nanoseconds() {
						dropped.Add(1)
					} else {
						lateErrs.Add(1)
					}
					return
				}
				if s.Status < 300 && s.Start.UnixNano() < at && s.Start.Add(s.Latency).UnixNano() > at {
					spanning.Add(1)
				}
			},
		})
	}()
	time.Sleep(levelDur / 4) // ensure requests are genuinely in flight
	shutdownAt.Store(time.Now().UnixNano())
	drainStart := time.Now()
	srvCancel()
	if err := <-serveErr; err != nil {
		return fmt.Errorf("server exited with error: %w", err)
	}
	drain := time.Since(drainStart)
	shutCancel()
	<-loadDone
	r.Shutdown = shutdownReport{
		Workers:    maxInFlight,
		DrainMS:    drain.Milliseconds(),
		Dropped:    dropped.Load(),
		Spanning:   spanning.Load(),
		LateErrors: lateErrs.Load(),
	}
	fmt.Printf("  drained in %s: %d in-flight dropped, %d completed spanning shutdown\n",
		drain, r.Shutdown.Dropped, r.Shutdown.Spanning)

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("p99 degradation at 4×: %.2fx\n", r.DegradationP99)
	fmt.Printf("wrote %s\n", out)
	// The overload layer's promise: excess load is shed, not queued, so
	// the accepted tail at 4× stays within 2× of the 1× baseline — with
	// the impact endpoints in the measured mix.
	if r.DegradationP99 > 2 {
		return fmt.Errorf("p99 degradation %.2fx exceeds the 2x bound", r.DegradationP99)
	}
	return nil
}

// sampleIDs picks up to k evenly spaced paper IDs from the corpus for
// the read mix and as citation targets.
func sampleIDs(n *graph.Network, k int) []string {
	total := n.N()
	if total == 0 {
		return nil
	}
	if k > total {
		k = total
	}
	ids := make([]string, 0, k)
	step := total / k
	if step == 0 {
		step = 1
	}
	for i := 0; i < total && len(ids) < k; i += step {
		ids = append(ids, n.Paper(int32(i)).ID)
	}
	return ids
}
