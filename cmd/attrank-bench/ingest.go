package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"attrank/internal/core"
	"attrank/internal/graph"
	"attrank/internal/ingest"
	"attrank/internal/synth"
)

// The -ingest benchmark measures the incremental-ranking path (DESIGN.md
// §14) against the warm full re-rank it replaces, at two levels:
//
//   - Library level: steady-state single-citation updates on a synthetic
//     corpus. The full arm compacts base+edge and runs a warm-started
//     full rank per write (what every ingest epoch cost before the push
//     path); the push arm feeds one core.Pusher the same writes and
//     settles each. Correctness is asserted, not sampled optimistically:
//     every checkEvery writes the push scores are compared against a
//     cold exact rank of the same graph and must sit within the
//     pusher's own error bound, a second pusher must reproduce the
//     first bit for bit (the follower-replay guarantee), and the
//     reconciliation rank of a chain that pushed must be bit-identical
//     to a shadow chain that never pushed.
//
//   - Ingest level: two live Ingesters (push on / push off) absorb the
//     same single-citation write stream with RerankAfter=1, measuring
//     sustained writes/sec with a ranking published after every write,
//     WAL fsync included.
//
// Exit is non-zero if any correctness assertion fails, so verify.sh can
// gate on a small -ingest run. The committed BENCH_ingest.json comes
// from bench.sh (GOMAXPROCS=1, 100k papers).

type latQuantiles struct {
	BestNS int64 `json:"best_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MeanNS int64 `json:"mean_ns"`
}

type ingestReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Profile     string  `json:"profile"`
	Papers      int     `json:"papers"`
	Edges       int     `json:"edges"`
	Writes      int     `json:"writes"`
	PushTol     float64 `json:"push_tol"`

	// Single-citation re-rank latency: warm full rank (compaction
	// excluded, rank only — the conservative baseline) vs push
	// (seed + settle, publication copy excluded and reported apart).
	FullWarm latQuantiles `json:"full_warm_rank"`
	Push     latQuantiles `json:"push_rerank"`
	// SpeedupP50 is the headline: warm-full p50 over push p50. The
	// acceptance bar is ≥10×.
	SpeedupP50  float64 `json:"speedup_p50"`
	SpeedupBest float64 `json:"speedup_best"`
	// ScoreCopyNS is the per-publication O(n) score snapshot the ingest
	// layer pays on top of the push itself.
	ScoreCopyNS int64 `json:"score_copy_ns"`

	// Push-path accounting over the whole write stream. Reconciles counts
	// the writes that blew a budget and went through the full path.
	PushesTotal  int64   `json:"pushes_total"`
	TouchedFinal int     `json:"touched_final"`
	Reconciles   int     `json:"reconciles"`
	FinalBound   float64 `json:"final_residual_bound"`

	// Correctness: exact-deviation checks (cold rank vs push scores)
	// and the two bit-equality gates.
	DeviationChecks       int     `json:"deviation_checks"`
	MaxDeviation          float64 `json:"max_l1_deviation"`
	MaxBoundAtCheck       float64 `json:"max_bound_at_check"`
	ReplayBitIdentical    bool    `json:"replay_bit_identical"`
	ReconcileBitIdentical bool    `json:"reconcile_bit_identical"`

	// Ingest-level writes/sec with a ranking published per write
	// (RerankAfter=1), WAL fsync included.
	IngestWrites       int     `json:"ingest_writes"`
	IngestFullPerSec   float64 `json:"ingest_full_writes_per_sec"`
	IngestPushPerSec   float64 `json:"ingest_push_writes_per_sec"`
	IngestSpeedup      float64 `json:"ingest_speedup"`
	IngestPushEpochs   uint64  `json:"ingest_push_epochs"`
	IngestReconciles   uint64  `json:"ingest_reconcile_epochs"`
	IngestFinalStale   float64 `json:"ingest_final_staleness"`
	IngestStaleBounded bool    `json:"ingest_staleness_bounded"`
}

// newEdges picks writes new citation edges on net, deterministically:
// distinct endpoints, not already present, citing no older than cited
// (citations flow backward in time), no duplicates within the pick.
func newEdges(net *graph.Network, writes int, seed int64) ([][2]int32, error) {
	rng := rand.New(rand.NewSource(seed))
	n := int32(net.N())
	picked := make(map[[2]int32]struct{}, writes)
	edges := make([][2]int32, 0, writes)
	for tries := 0; len(edges) < writes; tries++ {
		if tries > 1000*writes {
			return nil, fmt.Errorf("ingest bench: could not find %d fresh edges (corpus too dense?)", writes)
		}
		citing, cited := rng.Int31n(n), rng.Int31n(n)
		if citing == cited || net.Year(citing) < net.Year(cited) {
			continue
		}
		key := [2]int32{citing, cited}
		if _, ok := picked[key]; ok {
			continue
		}
		if net.HasEdge(citing, cited) {
			continue
		}
		picked[key] = struct{}{}
		edges = append(edges, key)
	}
	return edges, nil
}

func quantiles(lat []int64) latQuantiles {
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) int64 { return s[int(q*float64(len(s)-1))] }
	var sum int64
	for _, v := range s {
		sum += v
	}
	return latQuantiles{
		BestNS: s[0], P50NS: at(0.50), P90NS: at(0.90), P99NS: at(0.99),
		MeanNS: sum / int64(len(s)),
	}
}

// compactWith returns net plus the given extra edges, via the same
// builder path ingest compaction uses.
func compactWith(net *graph.Network, edges [][2]int32) (*graph.Network, error) {
	b := graph.NewBuilderFrom(net)
	for _, e := range edges {
		b.AddEdge(net.Paper(e[0]).ID, net.Paper(e[1]).ID)
	}
	return b.Build()
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	ab := make([]byte, 8*len(a))
	bb := make([]byte, 8*len(b))
	for i := range a {
		binary.LittleEndian.PutUint64(ab[8*i:], math.Float64bits(a[i]))
		binary.LittleEndian.PutUint64(bb[8*i:], math.Float64bits(b[i]))
	}
	return bytes.Equal(ab, bb)
}

func l1Deviation(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

func runIngest(papers, writes, fullReps, checkEvery, ingestWrites int, profile, out string, pushTol float64) error {
	prof, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	base, err := synth.GenerateSeeded(prof, 1)
	if err != nil {
		return err
	}
	now := base.MaxYear()
	p := core.Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: 1}
	r := ingestReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Profile:     prof.Name,
		Papers:      base.N(),
		Edges:       base.Edges(),
		Writes:      writes,
		PushTol:     pushTol,
	}

	edges, err := newEdges(base, writes, 1)
	if err != nil {
		return err
	}

	// Exact scores of the base corpus: the anchor both arms start from.
	baseRes, err := core.Rank(base, now, p)
	if err != nil {
		return err
	}

	// ---- Full arm: warm full rank per single-citation write. ----
	fmt.Printf("full arm: %d warm single-citation re-ranks…\n", fullReps)
	fullLat := make([]int64, 0, fullReps)
	for i := 0; i < fullReps && i < len(edges); i++ {
		netPlus, err := compactWith(base, edges[i:i+1])
		if err != nil {
			return err
		}
		warm := p
		warm.Start = baseRes.Scores
		op := core.Compile(netPlus)
		if _, err := op.Rank(now, warm); err != nil { // prime kernel + vector caches
			return err
		}
		bestNS := int64(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, err := op.Rank(now, warm); err != nil {
				return err
			}
			if d := time.Since(t0).Nanoseconds(); d < bestNS {
				bestNS = d
			}
		}
		fullLat = append(fullLat, bestNS)
	}
	r.FullWarm = quantiles(fullLat)

	// ---- Push arm: the production loop in miniature. One pusher absorbs
	// every write under the default budgets; when a settle blows a budget
	// the write reconciles through the tracker's warm-start chain (the
	// exact full path) and the pusher reseeds from the result — the same
	// policy internal/ingest runs.
	fmt.Printf("push arm: %d single-citation pushes (tol %g)…\n", writes, pushTol)
	pcfg := core.PushConfig{Tol: pushTol}
	tr, err := core.NewTracker(p)
	if err != nil {
		return err
	}
	if err := tr.Seed(base, baseRes.Scores); err != nil {
		return err
	}
	pu, err := core.NewPusher(base, now, p, pcfg, baseRes.Scores)
	if err != nil {
		return err
	}
	shadow, err := core.NewPusher(base, now, p, pcfg, baseRes.Scores) // replay determinism witness
	if err != nil {
		return err
	}
	pushLat := make([]int64, 0, writes)
	var boundaries []int // write indices (1-based) that reconciled
	var pushesTotal int64
	var lastTouched int
	r.ReplayBitIdentical = true
	for i, e := range edges {
		t0 := time.Now()
		err := pu.AddCitation(e[0], e[1])
		var st core.PushStats
		if err == nil {
			st, err = pu.Settle()
		}
		if err != nil {
			if !errors.Is(err, core.ErrNeedFull) {
				return fmt.Errorf("push write %d: %w", i, err)
			}
			// Reconciliation epoch: warm full rank over the compacted
			// graph (current write included), reseed both pushers.
			curNet, cErr := compactWith(base, edges[:i+1])
			if cErr != nil {
				return cErr
			}
			res, uErr := tr.Update(curNet, now)
			if uErr != nil {
				return uErr
			}
			if pu, err = core.NewPusher(curNet, now, p, pcfg, res.Scores); err != nil {
				return err
			}
			if shadow, err = core.NewPusher(curNet, now, p, pcfg, res.Scores); err != nil {
				return err
			}
			boundaries = append(boundaries, i+1)
			continue
		}
		pushLat = append(pushLat, time.Since(t0).Nanoseconds())
		pushesTotal += int64(st.Pushes)
		lastTouched = st.Touched
		r.FinalBound = st.Bound
		if err := shadow.AddCitation(e[0], e[1]); err != nil {
			return fmt.Errorf("shadow diverged at write %d: %w", i, err)
		}
		if _, err := shadow.Settle(); err != nil {
			return fmt.Errorf("shadow diverged at write %d: %w", i, err)
		}
		if checkEvery > 0 && (i+1)%checkEvery == 0 {
			exactNet, err := compactWith(base, edges[:i+1])
			if err != nil {
				return err
			}
			exact, err := core.Rank(exactNet, now, p)
			if err != nil {
				return err
			}
			dev := l1Deviation(pu.Scores(), exact.Scores)
			bound := pu.Bound()
			r.DeviationChecks++
			r.MaxDeviation = math.Max(r.MaxDeviation, dev)
			r.MaxBoundAtCheck = math.Max(r.MaxBoundAtCheck, bound)
			if dev > bound+1e-9 {
				return fmt.Errorf("ingest bench: write %d: L1 deviation %.3g exceeds the push bound %.3g", i+1, dev, bound)
			}
			if !bitsEqual(pu.Scores(), shadow.Scores()) {
				r.ReplayBitIdentical = false
				return fmt.Errorf("ingest bench: write %d: two pushers fed the same sequence diverged", i+1)
			}
		}
	}
	if len(pushLat) == 0 {
		return fmt.Errorf("ingest bench: every write reconciled; nothing to measure")
	}
	r.Push = quantiles(pushLat)
	r.PushesTotal = pushesTotal
	r.TouchedFinal = lastTouched
	r.Reconciles = len(boundaries)
	r.SpeedupP50 = float64(r.FullWarm.P50NS) / float64(r.Push.P50NS)
	r.SpeedupBest = float64(r.FullWarm.BestNS) / float64(r.Push.BestNS)
	t0 := time.Now()
	_ = pu.CopyScores()
	r.ScoreCopyNS = time.Since(t0).Nanoseconds()

	// ---- Reconciliation bit-equality. ----
	// The chain that pushed must land, at every reconciliation boundary
	// and at the end, on exactly the scores of a shadow chain that never
	// pushed: push epochs must leave the warm-start chain untouched.
	finalNet, err := compactWith(base, edges)
	if err != nil {
		return err
	}
	viaPushChain, err := tr.Update(finalNet, now) // the pushed chain's tracker
	if err != nil {
		return err
	}
	tr2, err := core.NewTracker(p)
	if err != nil {
		return err
	}
	if err := tr2.Seed(base, baseRes.Scores); err != nil {
		return err
	}
	for _, b := range boundaries { // full-only chain: same boundaries, no pushes between
		bNet, err := compactWith(base, edges[:b])
		if err != nil {
			return err
		}
		if _, err := tr2.Update(bNet, now); err != nil {
			return err
		}
	}
	fullOnlyChain, err := tr2.Update(finalNet, now)
	if err != nil {
		return err
	}
	r.ReconcileBitIdentical = bitsEqual(viaPushChain.Scores, fullOnlyChain.Scores)
	if !r.ReconcileBitIdentical {
		return fmt.Errorf("ingest bench: reconciliation rank differs between the pushed and the full-only chain")
	}
	// And the reconciliation really is exact: within ranking tolerance
	// of a cold rank of the same graph.
	exactFinal, err := core.Rank(finalNet, now, p)
	if err != nil {
		return err
	}
	if dev := l1Deviation(viaPushChain.Scores, exactFinal.Scores); dev > 1e-6 {
		return fmt.Errorf("ingest bench: reconciliation deviates %.3g from the exact rank", dev)
	}

	// ---- Ingest-level arm: live writes/sec, rank-per-write. ----
	if ingestWrites > len(edges) {
		ingestWrites = len(edges)
	}
	r.IngestWrites = ingestWrites
	fmt.Printf("ingest arm: %d live writes, full vs push…\n", ingestWrites)
	fullPerSec, _, _, _, err := runIngestArm(base, p, edges[:ingestWrites], 0)
	if err != nil {
		return err
	}
	pushPerSec, pushEpochs, reconciles, finalStale, err := runIngestArm(base, p, edges[:ingestWrites], pushTol)
	if err != nil {
		return err
	}
	r.IngestFullPerSec, r.IngestPushPerSec = fullPerSec, pushPerSec
	r.IngestSpeedup = pushPerSec / fullPerSec
	r.IngestPushEpochs = pushEpochs
	r.IngestReconciles = reconciles
	r.IngestFinalStale = finalStale
	r.IngestStaleBounded = finalStale <= core.DefaultPushMaxResidual
	if !r.IngestStaleBounded {
		return fmt.Errorf("ingest bench: final staleness %.3g exceeds the residual budget", finalStale)
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("full warm rank: best=%s p50=%s p99=%s\n",
		time.Duration(r.FullWarm.BestNS), time.Duration(r.FullWarm.P50NS), time.Duration(r.FullWarm.P99NS))
	fmt.Printf("push re-rank:   best=%s p50=%s p99=%s (+%s score copy)\n",
		time.Duration(r.Push.BestNS), time.Duration(r.Push.P50NS), time.Duration(r.Push.P99NS), time.Duration(r.ScoreCopyNS))
	fmt.Printf("speedup: %.0fx at p50 (%.0fx best); %d pushes over %d writes (%d reconciles), %d nodes touched\n",
		r.SpeedupP50, r.SpeedupBest, r.PushesTotal, r.Writes, r.Reconciles, r.TouchedFinal)
	fmt.Printf("exactness: %d checks, max deviation %.3g (bound %.3g), replay bit-identical, reconcile bit-identical\n",
		r.DeviationChecks, r.MaxDeviation, r.MaxBoundAtCheck)
	fmt.Printf("live ingest: full=%.1f writes/s push=%.1f writes/s (%.1fx), %d push epochs, %d reconciles, staleness %.3g\n",
		r.IngestFullPerSec, r.IngestPushPerSec, r.IngestSpeedup, r.IngestPushEpochs, r.IngestReconciles, r.IngestFinalStale)
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runIngestArm drives one live Ingester through the write stream, one
// citation per batch with RerankAfter=1, waiting for each write's epoch
// to publish before the next — the rank-per-write regime where the push
// path matters most.
func runIngestArm(base *graph.Network, p core.Params, edges [][2]int32, pushTol float64) (perSec float64, pushEpochs, reconciles uint64, staleness float64, err error) {
	dir, err := os.MkdirTemp("", "attrank-bench-ingest-*")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	ing, err := ingest.Open(base, ingest.Config{
		Dir:           dir,
		Params:        p,
		RerankAfter:   1,
		RerankEvery:   time.Millisecond,
		SnapshotEvery: -1,
		PushTol:       pushTol,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer ing.Close()
	t0 := time.Now()
	for i, e := range edges {
		m := ingest.CitationMut{Citing: base.Paper(e[0]).ID, Cited: base.Paper(e[1]).ID}
		if _, err := ing.AddCitation(m); err != nil {
			return 0, 0, 0, 0, fmt.Errorf("live write %d: %w", i, err)
		}
		want := uint64(i + 2) // epoch 1 is the initial rank
		for ing.Status().Epoch < want {
			time.Sleep(20 * time.Microsecond)
		}
	}
	wall := time.Since(t0)
	st := ing.Status()
	full := st.Epoch - 1 - st.PushEpochs // epochs beyond the initial one that ranked fully
	return float64(len(edges)) / wall.Seconds(), st.PushEpochs, full, st.Staleness, nil
}
