package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"attrank/internal/core"
	"attrank/internal/ingest"
	"attrank/internal/load"
	"attrank/internal/replication"
	"attrank/internal/service"
	"attrank/internal/synth"
)

// clusterReport is the schema of BENCH_cluster.json: a leader plus K
// followers on loopback, read throughput as replicas are added one at a
// time (with a live write stream flowing through replication the whole
// run), and a follower crash-recovery check that must end bit-identical
// to the leader.
type clusterReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Papers      int    `json:"papers"`
	Edges       int    `json:"edges"`
	Followers   int    `json:"followers"`

	// CalibrationRPS is one uncapped follower's raw read throughput.
	// Every replica is then rate-capped at PerReplicaCapRPS so the
	// scaling levels measure added capacity, not contention between
	// replicas for this host's cores.
	CalibrationRPS   float64 `json:"calibration_rps"`
	PerReplicaCapRPS float64 `json:"per_replica_cap_rps"`

	Levels []clusterLevel `json:"levels"`
	// ScalingAtK is accepted-rps(K replicas) / accepted-rps(1 replica);
	// ~K means reads scale linearly with replica count.
	ScalingAtK float64 `json:"scaling_at_k"`

	Recovery clusterRecovery `json:"recovery"`
}

// clusterLevel is one read-scaling level: the same per-replica rate cap,
// R replicas serving.
type clusterLevel struct {
	Replicas   int   `json:"replicas"`
	Workers    int   `json:"workers"`
	DurationMS int64 `json:"duration_ms"`

	Total       int64   `json:"total"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	AcceptedRPS float64 `json:"accepted_rps"`
	OfferedRPS  float64 `json:"offered_rps"`

	P50US int64 `json:"p50_us"`
	P99US int64 `json:"p99_us"`

	// MaxEpochLag is the worst follower lag observed at the end of the
	// level — proof replication kept up while reads and writes flowed.
	MaxEpochLag uint64 `json:"max_epoch_lag"`
	LeaderEpoch uint64 `json:"leader_epoch"`
}

// clusterRecovery is the crash-recovery phase: one follower killed
// mid-stream (no state save), the leader kept writing, the follower
// restarted from its surviving directory.
type clusterRecovery struct {
	KilledAtEpoch    uint64 `json:"killed_at_epoch"`
	RecoveredToEpoch uint64 `json:"recovered_to_epoch"`
	CatchupMS        int64  `json:"catchup_ms"`
	// FullResyncs must be 0: recovery replays the local WAL and resumes
	// the stream, it does not re-bootstrap.
	FullResyncs uint64 `json:"full_resyncs"`
	// BitIdentical must be true: every score equal under ==, not ≈.
	BitIdentical  bool `json:"bit_identical"`
	PapersChecked int  `json:"papers_checked"`
}

// clusterNode is one running follower: the replication client plus its
// HTTP server.
type clusterNode struct {
	fol    *replication.Follower
	url    string
	cancel context.CancelFunc
	done   chan error
}

// serveReplica wraps fol in a follower-mode server (rate-capped when
// capRPS > 0) and serves it on a loopback listener.
func serveReplica(fol *replication.Follower, capRPS float64) (*clusterNode, error) {
	srv := service.NewReplica(fol, 0)
	srv.SetLogf(nil)
	srv.ConfigureAdmission(service.AdmissionConfig{
		MaxInFlight: 4 * runtime.NumCPU(),
		Deadline:    2 * time.Second,
		RetryAfter:  time.Second,
		MaxRPS:      capRPS,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &clusterNode{fol: fol, url: "http://" + ln.Addr().String(), cancel: cancel, done: make(chan error, 1)}
	go func() { n.done <- service.ServeListener(ctx, ln, srv.Handler(), service.ServeOptions{}) }()
	return n, nil
}

// stop shuts the node's server down and waits for the drain. Safe to
// call twice (the crash phase stops the victim before the deferred
// cleanup runs again).
func (n *clusterNode) stop() {
	n.cancel()
	if n.done != nil {
		<-n.done
		n.done = nil
	}
}

// runCluster stands up a replicated serving tier in one process: a
// leader ingesting a live write stream, K followers replaying its WAL,
// and the closed-loop harness reading from 1…K replicas.
func runCluster(papers, followers int, out string, levelDur time.Duration) error {
	if followers < 3 {
		followers = 3
	}
	prof, err := synth.ProfileByName("dblp")
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	corpus, err := synth.GenerateSeeded(prof, 1)
	if err != nil {
		return err
	}

	root, err := os.MkdirTemp("", "attrank-bench-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// See runServe: at GOMAXPROCS=1 the load generator, the leader, the
	// followers and their connection goroutines serialize into one
	// scheduler thread and no concurrency is measured.
	if runtime.GOMAXPROCS(0) < 8 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	}

	// Leader: live ingester + service handler with the replication
	// endpoints attached. Snapshots stay off so the WAL generation is
	// stable for the whole run (rotation handling has its own tests).
	ing, err := ingest.Open(corpus, ingest.Config{
		Dir:           filepath.Join(root, "leader"),
		Params:        core.Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: 1},
		RerankAfter:   2048,
		RerankEvery:   500 * time.Millisecond,
		SnapshotEvery: -1,
	})
	if err != nil {
		return err
	}
	defer ing.Close()
	leadSrv := service.NewLive(ing)
	leadSrv.SetLogf(nil)
	leadSrv.AttachReplication(replication.NewLeader(ing, replication.LeaderConfig{
		Heartbeat: 100 * time.Millisecond,
	}).Handler())
	leadSrv.ConfigureAdmission(service.AdmissionConfig{MaxInFlight: 4 * runtime.NumCPU(), Deadline: 2 * time.Second})
	leadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	leadCtx, leadCancel := context.WithCancel(context.Background())
	defer leadCancel()
	leadDone := make(chan error, 1)
	go func() { leadDone <- service.ServeListener(leadCtx, leadLn, leadSrv.Handler(), service.ServeOptions{}) }()
	leaderURL := "http://" + leadLn.Addr().String()
	fmt.Printf("leader up at %s (epoch %d)\n", leaderURL, ing.Ranking().Epoch)

	// Followers: replication clients first, so they bootstrap while the
	// calibration below runs.
	fols := make([]*replication.Follower, followers)
	for i := range fols {
		fols[i], err = replication.StartFollower(replication.FollowerConfig{
			Leader: leaderURL,
			Dir:    filepath.Join(root, fmt.Sprintf("follower-%d", i)),
		})
		if err != nil {
			return err
		}
		defer fols[i].Close()
	}
	for i, f := range fols {
		if err := f.WaitEpoch(ing.Ranking().Epoch, 30*time.Second); err != nil {
			return fmt.Errorf("follower %d bootstrap: %w", i, err)
		}
	}
	fmt.Printf("%d followers bootstrapped at epoch %d\n", followers, ing.Ranking().Epoch)

	r := clusterReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Papers:      corpus.N(),
		Edges:       corpus.Edges(),
		Followers:   followers,
	}
	ids := sampleIDs(corpus, 256)

	// Calibrate: raw read throughput of ONE uncapped replica. All the
	// replicas share this host's cores, so uncapped replicas added to a
	// saturated box would just split the same total — the classic
	// single-machine "scaling" lie. Capping every replica at a quarter
	// of raw leaves headroom for K=4 genuinely independent shares.
	calib, err := serveReplica(fols[0], 0)
	if err != nil {
		return err
	}
	res, err := load.Run(context.Background(), load.Config{
		BaseURL: calib.url, Workers: 4 * runtime.NumCPU(), Duration: levelDur,
		Seed: 11, PaperIDs: ids,
	})
	calib.stop()
	if err != nil {
		return err
	}
	r.CalibrationRPS = float64(res.OK) / res.Elapsed.Seconds()
	r.PerReplicaCapRPS = r.CalibrationRPS / 4
	fmt.Printf("calibration: %.0f rps raw → %.0f rps cap per replica\n", r.CalibrationRPS, r.PerReplicaCapRPS)

	// Serve every follower behind the same per-replica cap.
	nodes := make([]*clusterNode, followers)
	for i, f := range fols {
		if nodes[i], err = serveReplica(f, r.PerReplicaCapRPS); err != nil {
			return err
		}
		defer nodes[i].stop()
	}

	// A continuous write stream flows into the leader for the rest of
	// the run: every scaling number below is measured while replication
	// is actually shipping and followers are re-ranking.
	writeCtx, writeCancel := context.WithCancel(context.Background())
	defer writeCancel()
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		load.Run(writeCtx, load.Config{
			BaseURL: leaderURL, Workers: 1, Seed: 23,
			WriteRatio: 1.0, BatchSize: 8, PaperIDs: ids, IDPrefix: "clw",
			ShedBackoff: 20 * time.Millisecond,
		})
	}()

	// Read scaling: same aggregate offered load shape per replica count,
	// workers proportional to R so each level saturates its replicas'
	// caps the same way.
	for rcount := 1; rcount <= followers; rcount++ {
		urls := make([]string, rcount)
		for i := 0; i < rcount; i++ {
			urls[i] = nodes[i].url
		}
		workers := 8 * rcount
		res, err := load.Run(context.Background(), load.Config{
			BaseURLs: urls, Workers: workers, Duration: levelDur,
			Seed: int64(200 + rcount), PaperIDs: ids,
			ShedBackoff: 5 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		lv := clusterLevel{
			Replicas:    rcount,
			Workers:     workers,
			DurationMS:  res.Elapsed.Milliseconds(),
			Total:       res.Total,
			OK:          res.OK,
			Shed:        res.Shed,
			Errors:      res.ClientErr + res.ServerErr + res.Transport,
			AcceptedRPS: float64(res.OK) / res.Elapsed.Seconds(),
			OfferedRPS:  float64(res.Total) / res.Elapsed.Seconds(),
			P50US:       res.Accepted.Quantile(0.50).Microseconds(),
			P99US:       res.Accepted.Quantile(0.99).Microseconds(),
			LeaderEpoch: ing.Ranking().Epoch,
		}
		for i := 0; i < rcount; i++ {
			if lag := nodes[i].fol.Info().EpochLag; lag > lv.MaxEpochLag {
				lv.MaxEpochLag = lag
			}
		}
		r.Levels = append(r.Levels, lv)
		fmt.Printf("%d replica(s): accepted %.0f rps (offered %.0f, shed %d), p99=%dµs, max lag %d\n",
			rcount, lv.AcceptedRPS, lv.OfferedRPS, lv.Shed, lv.P99US, lv.MaxEpochLag)
	}
	if base := r.Levels[0].AcceptedRPS; base > 0 {
		r.ScalingAtK = r.Levels[len(r.Levels)-1].AcceptedRPS / base
	}

	// Crash recovery: kill the last follower's replication client
	// mid-stream (no state save — this is the crash), let the leader
	// keep writing, then restart from the same directory. The restart
	// must replay its local WAL, resume the stream where it left off
	// (zero full resyncs) and land bit-identical to the leader.
	victim := followers - 1
	nodes[victim].stop()
	killedAt := fols[victim].Info().LocalEpoch
	fols[victim].Kill()
	fmt.Printf("killed follower %d at epoch %d; leader writing on…\n", victim, killedAt)
	time.Sleep(levelDur / 2)
	writeCancel()
	<-writeDone
	if err := ing.Flush(); err != nil {
		return err
	}

	restartAt := time.Now()
	ref, err := replication.StartFollower(replication.FollowerConfig{
		Leader: leaderURL,
		Dir:    filepath.Join(root, fmt.Sprintf("follower-%d", victim)),
	})
	if err != nil {
		return err
	}
	defer ref.Close()
	lead := ing.Ranking()
	if err := ref.WaitEpoch(lead.Epoch, 60*time.Second); err != nil {
		return fmt.Errorf("follower %d catch-up after crash: %w", victim, err)
	}
	r.Recovery = clusterRecovery{
		KilledAtEpoch:    killedAt,
		RecoveredToEpoch: ref.Ranking().Epoch,
		CatchupMS:        time.Since(restartAt).Milliseconds(),
		FullResyncs:      ref.Info().FullResyncs,
		BitIdentical:     true,
	}
	loc := ref.Ranking()
	for i := int32(0); int(i) < lead.Net.N(); i++ {
		j, ok := loc.Net.Lookup(lead.Net.Paper(i).ID)
		if !ok || lead.Result.Scores[i] != loc.Result.Scores[j] || lead.Positions[i] != loc.Positions[j] {
			r.Recovery.BitIdentical = false
			break
		}
		r.Recovery.PapersChecked++
	}
	fmt.Printf("recovery: epoch %d→%d in %dms, full resyncs %d, bit-identical %v (%d papers)\n",
		r.Recovery.KilledAtEpoch, r.Recovery.RecoveredToEpoch, r.Recovery.CatchupMS,
		r.Recovery.FullResyncs, r.Recovery.BitIdentical, r.Recovery.PapersChecked)
	if !r.Recovery.BitIdentical {
		return fmt.Errorf("crash recovery diverged from the leader")
	}
	if r.Recovery.FullResyncs != 0 {
		return fmt.Errorf("crash recovery took %d full resyncs; want stream resume", r.Recovery.FullResyncs)
	}

	data, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (scaling at %d replicas: %.2f×)\n", out, followers, r.ScalingAtK)
	return nil
}
