package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"attrank/internal/core"
	"attrank/internal/eval"
	"attrank/internal/metrics"
	"attrank/internal/synth"
)

// sweepWidths are the block sizes the B-sweep measures. Width 1 isolates
// the non-kernel wins (shared attention/recency vectors, scratch metrics)
// from the SpMM blocking itself.
var sweepWidths = []int{1, 4, 8, 16, 32}

type widthResult struct {
	Width       int     `json:"width"`
	NS          int64   `json:"sweep_ns"`
	CellsPerSec float64 `json:"cells_per_sec"`
	SpeedupVsW1 float64 `json:"speedup_vs_width1"`
}

type sweepReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Profile     string `json:"profile"`
	Papers      int    `json:"papers"`
	CurrentN    int    `json:"current_papers"`
	Edges       int    `json:"edges"`
	GridCells   int    `json:"grid_cells"`
	Partitions  int    `json:"yw_partitions"`
	Reps        int    `json:"reps"`

	// Full Table-3 grid sweep, best of reps, in nanoseconds. The
	// sequential arm replays the seed implementation cell by cell: one
	// op.Rank per cell plus a fresh allocating Spearman per cell. The
	// batched arm is eval.SweepAttRank (blocked SpMM through RankBatch,
	// scratch metrics, shared attention/recency vectors).
	SequentialNS          int64   `json:"sequential_sweep_ns"`
	BatchedNS             int64   `json:"batched_sweep_ns"`
	SequentialCellsPerSec float64 `json:"sequential_cells_per_sec"`
	BatchedCellsPerSec    float64 `json:"batched_cells_per_sec"`
	BatchedVsSequential   float64 `json:"batched_vs_sequential_speedup"`

	// BitIdentical records the runtime cross-check that every cell value
	// of the batched sweep equals the sequential arm's float64 exactly.
	BitIdentical bool `json:"bit_identical"`

	// Widths is the B-sweep: the batched grid sweep re-run with the
	// block width pinned to each candidate size.
	Widths []widthResult `json:"widths"`
}

// runSweep benchmarks the full AttRank grid sweep — the Table-3 workload —
// batched against sequential, and writes BENCH_sweep.json.
func runSweep(papers int, profile, out string, reps int) error {
	prof, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	net, err := synth.Generate(prof)
	if err != nil {
		return err
	}
	s, err := eval.NewSplit(net, 2.0)
	if err != nil {
		return err
	}
	truth := s.GroundTruth()
	grid := eval.AttRankGrid(-0.16)
	m := eval.Rho()
	op := core.OperatorFor(s.Current)
	parts := partitionGrid(grid)

	r := sweepReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Profile:     prof.Name,
		Papers:      net.N(),
		CurrentN:    s.Current.N(),
		Edges:       net.Edges(),
		GridCells:   len(grid),
		Partitions:  len(parts),
		Reps:        reps,
	}
	fmt.Printf("split: current=%d papers, grid=%d cells in %d (y,w) partitions\n",
		r.CurrentN, r.GridCells, r.Partitions)

	// The sequential arm is the seed sweep: per-cell Rank (Workers = 0 →
	// the serial CSC reference kernel) and a fresh allocating Spearman,
	// in grid order. At GOMAXPROCS=1 this is exactly what the seed's
	// goroutine-per-cell sweep degenerates to.
	seqVals := make([]float64, len(grid))
	seqErr := make([]bool, len(grid))
	sequential := func() {
		for i, p := range grid {
			res, err := op.Rank(s.TN, p)
			if err != nil {
				seqErr[i] = true
				continue
			}
			v, err := metrics.Spearman(res.Scores, truth)
			if err != nil {
				seqErr[i] = true
				continue
			}
			seqVals[i] = v
		}
	}

	var cells []eval.AttRankCell
	batched := func() { cells = eval.SweepAttRank(s, truth, grid, m) }

	// Untimed priming runs: compile the operator, build the fused and
	// batched kernels, then pin the runtime bit-equality cross-check.
	fmt.Println("priming (untimed full sweeps)…")
	sequential()
	batched()
	r.BitIdentical = true
	for i := range grid {
		if seqErr[i] != (cells[i].Err != nil) || (!seqErr[i] && cells[i].Value != seqVals[i]) {
			r.BitIdentical = false
			fmt.Printf("MISMATCH cell %d: sequential %v (err=%v) batched %v (err=%v)\n",
				i, seqVals[i], seqErr[i], cells[i].Value, cells[i].Err)
		}
	}

	// Interleave the arms' reps so machine drift (thermals, neighbors,
	// GC pacing) hits both sides equally instead of biasing whichever
	// batch of reps ran second; best-of suppresses the remaining noise.
	fmt.Printf("timing sequential and batched arms interleaved (%d reps each)…\n", reps)
	r.SequentialNS, r.BatchedNS = int64(1<<63-1), int64(1<<63-1)
	for i := 0; i < reps; i++ {
		if d := best(1, sequential); d < r.SequentialNS {
			r.SequentialNS = d
		}
		if d := best(1, batched); d < r.BatchedNS {
			r.BatchedNS = d
		}
	}
	secs := func(ns int64) float64 { return float64(ns) / 1e9 }
	r.SequentialCellsPerSec = float64(len(grid)) / secs(r.SequentialNS)
	r.BatchedCellsPerSec = float64(len(grid)) / secs(r.BatchedNS)
	r.BatchedVsSequential = float64(r.SequentialNS) / float64(r.BatchedNS)

	// B-sweep: the same batched sweep with the block width pinned. Runs
	// single-threaded regardless of GOMAXPROCS so the widths are compared
	// on kernel merit alone.
	for _, w := range sweepWidths {
		fmt.Printf("timing width %d…\n", w)
		ns := best(reps, func() { sweepAtWidth(op, s, truth, grid, parts, w) })
		r.Widths = append(r.Widths, widthResult{
			Width:       w,
			NS:          ns,
			CellsPerSec: float64(len(grid)) / secs(ns),
		})
	}
	for i := range r.Widths {
		r.Widths[i].SpeedupVsW1 = float64(r.Widths[0].NS) / float64(r.Widths[i].NS)
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("sequential: %s (%.2f cells/s)\n", time.Duration(r.SequentialNS), r.SequentialCellsPerSec)
	fmt.Printf("batched:    %s (%.2f cells/s)  %.2fx vs sequential  bit-identical=%v\n",
		time.Duration(r.BatchedNS), r.BatchedCellsPerSec, r.BatchedVsSequential, r.BitIdentical)
	for _, w := range r.Widths {
		fmt.Printf("  width %2d: %s (%.2f cells/s, %.2fx vs width 1)\n",
			w.Width, time.Duration(w.NS), w.CellsPerSec, w.SpeedupVsW1)
	}
	fmt.Printf("wrote %s\n", out)
	if !r.BitIdentical {
		return fmt.Errorf("batched sweep is not bit-identical to the sequential sweep")
	}
	return nil
}

// partitionGrid groups grid indices by shared (AttentionYears, W) in
// first-seen order and sorts each partition by ascending α with stable
// ties — the same blocking eval.SweepAttRank performs.
func partitionGrid(grid []core.Params) [][]int {
	type ywKey struct {
		y int
		w float64
	}
	index := map[ywKey]int{}
	var parts [][]int
	for i, p := range grid {
		k := ywKey{y: p.AttentionYears, w: p.W}
		at, ok := index[k]
		if !ok {
			at = len(parts)
			index[k] = at
			parts = append(parts, nil)
		}
		parts[at] = append(parts[at], i)
	}
	for _, part := range parts {
		sort.SliceStable(part, func(a, b int) bool {
			return grid[part[a]].Alpha < grid[part[b]].Alpha
		})
	}
	return parts
}

// sweepAtWidth runs the batched grid sweep single-threaded with an
// explicit block width: per partition, rank through RankBatchWidth and
// score each cell with a scratch Spearman.
func sweepAtWidth(op *core.Operator, s *eval.Split, truth []float64, grid []core.Params, parts [][]int, width int) {
	scratch := metrics.NewScratch()
	for _, part := range parts {
		ps := make([]core.Params, len(part))
		for j, gi := range part {
			ps[j] = grid[gi]
			// Keep the grid batched: Workers = 0 would delegate each cell
			// to the serial reference (see RankBatch); one tiled partition
			// ranks the same scores bit for bit.
			ps[j].Workers = 1
		}
		results, errs := op.RankBatchWidth(s.TN, ps, width)
		for j := range part {
			if errs[j] != nil {
				continue
			}
			if _, err := scratch.Spearman(results[j].Scores, truth); err != nil {
				panic(err)
			}
			results[j] = nil
		}
	}
}
