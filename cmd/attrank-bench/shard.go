package main

// The -shard mode: benchmark the row-partitioned distributed ranking
// path (internal/shard, DESIGN.md §16) over in-process loopback
// workers, which exercise the exact HTTP wire protocol a multi-process
// deployment uses. For each shard count it measures the per-iteration
// wall clock, the boundary bytes exchanged per iteration, and the
// per-shard resident matrix footprint — and gates the run on bitwise
// equality between the sharded rank (cold and warm-started) and the
// single-process kernel at the same partition count, exiting non-zero
// on the first differing bit.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"attrank/internal/core"
	"attrank/internal/graph"
	"attrank/internal/shard"
	"attrank/internal/synth"
)

type shardReport struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Profile     string `json:"profile"`
	Papers      int    `json:"papers"`
	Edges       int    `json:"edges"`
	Reps        int    `json:"reps"`

	Arms []shardArm `json:"shards"`
}

type shardArm struct {
	// Shards is the requested worker count; Blocks is what the partition
	// actually deployed (small corpora compact, leaving workers idle).
	Shards int `json:"shards"`
	Blocks int `json:"blocks"`

	// Per-iteration wall clock (best of reps): the sharded exchange
	// round vs the single-process tiled kernel at the same partition
	// count, both pinned to a fixed iteration count.
	IterNS      int64 `json:"iter_ns"`
	IterLocalNS int64 `json:"iter_local_ns"`

	// The exchange bill per iteration: coordinator→shard span payloads,
	// shard→coordinator own-segment payloads, and the span float64
	// count they carry. Constant for a deployment's life.
	SendBytesPerIter int64 `json:"boundary_send_bytes_per_iter"`
	RecvBytesPerIter int64 `json:"boundary_recv_bytes_per_iter"`
	BoundaryFloats   int   `json:"boundary_floats_per_iter"`

	// Per-shard resident matrix bytes — the memory the partition frees
	// on each box. Sum is ~constant, max shrinks ~linearly with blocks.
	ResidentBytes []int64 `json:"resident_bytes_per_shard"`
	ResidentMax   int64   `json:"resident_bytes_max"`

	// Cold rank (includes block shipping) and warm-started rank through
	// the provider path, plus their iteration counts.
	RankColdNS    int64 `json:"rank_cold_ns"`
	RankWarmNS    int64 `json:"rank_warm_ns"`
	RankColdIters int   `json:"rank_cold_iterations"`
	RankWarmIters int   `json:"rank_warm_iterations"`

	// BitIdentical records the gate this mode exists for: every score
	// and residual of the sharded cold and warm ranks `==` the local
	// kernel's. The run aborts non-zero if it would be false.
	BitIdentical bool `json:"bit_identical"`
}

func runShard(papers int, profile, out, countsSpec string, reps int) error {
	var counts []int
	for _, f := range strings.Split(countsSpec, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			return fmt.Errorf("-shard-counts: bad count %q", f)
		}
		counts = append(counts, c)
	}
	prof, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	net, err := synth.Generate(prof)
	if err != nil {
		return err
	}
	r := shardReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Profile:     prof.Name,
		Papers:      net.N(),
		Edges:       net.Edges(),
		Reps:        reps,
	}
	for _, s := range counts {
		arm, err := shardArmRun(net, s, reps)
		if err != nil {
			return fmt.Errorf("%d shards: %w", s, err)
		}
		r.Arms = append(r.Arms, *arm)
		fmt.Printf("shards=%d blocks=%d iter=%s local=%s boundary=%s+%s/iter resident(max)=%s cold=%s warm=%s bit-identical=%v\n",
			arm.Shards, arm.Blocks, time.Duration(arm.IterNS), time.Duration(arm.IterLocalNS),
			fmtBytes(arm.SendBytesPerIter), fmtBytes(arm.RecvBytesPerIter), fmtBytes(arm.ResidentMax),
			time.Duration(arm.RankColdNS), time.Duration(arm.RankWarmNS), arm.BitIdentical)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// shardArmRun measures one shard count end to end. The order matters:
// the bit-equality gate runs first through the real provider hook (so a
// silent local fallback cannot masquerade as a passing gate — the
// worker step cursors and the fallback counter are both checked), and
// only then is a dedicated coordinator deployed for the fixed-iteration
// exchange timing.
func shardArmRun(net *graph.Network, shards, reps int) (*shardArm, error) {
	lw, err := shard.StartLocalWorkers(shards, nil)
	if err != nil {
		return nil, err
	}
	defer lw.Close()

	now := net.MaxYear()
	p := core.Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: shards}
	arm := &shardArm{Shards: shards}

	fallbacksBefore := core.ShardFallbacks()
	core.SetShardProvider(shard.Provider(nil, lw.Peers, nil))
	defer core.SetShardProvider(nil)

	opShard := core.Compile(net)
	coldDur, cold, err := rankOnce(opShard, now, p)
	if err != nil {
		return nil, err
	}
	pw := p
	pw.Start = cold.Scores
	warmDur, warm, err := rankOnce(opShard, now+1, pw)
	if err != nil {
		return nil, err
	}
	arm.RankColdNS, arm.RankColdIters = coldDur, cold.Iterations
	arm.RankWarmNS, arm.RankWarmIters = warmDur, warm.Iterations
	if n := core.ShardFallbacks() - fallbacksBefore; n > 0 {
		return nil, fmt.Errorf("rank fell back to the local kernel %d time(s) — the gate would not be testing the distributed path", n)
	}
	stepped, err := shardsStepped(lw.Peers)
	if err != nil {
		return nil, err
	}
	if stepped == 0 {
		return nil, fmt.Errorf("no shard worker processed a step — rank did not take the distributed path")
	}

	// The single-process reference at the same partition count.
	core.SetShardProvider(nil)
	opLocal := core.Compile(net)
	_, localCold, err := rankOnce(opLocal, now, p)
	if err != nil {
		return nil, err
	}
	pl := p
	pl.Start = localCold.Scores
	_, localWarm, err := rankOnce(opLocal, now+1, pl)
	if err != nil {
		return nil, err
	}
	if err := compareResults("cold", cold, localCold); err != nil {
		return nil, err
	}
	if err := compareResults("warm", warm, localWarm); err != nil {
		return nil, err
	}
	arm.BitIdentical = true

	// Fixed-iteration timing: drive the coordinator directly so the
	// exchange accounting is readable. The deployment re-ships blocks
	// under a fresh instance (new instance wins), which is fine — the
	// provider gate above is done with the workers.
	ti, release, err := opShard.TiledKernel()
	if err != nil {
		return nil, err
	}
	c, err := shard.Deploy(nil, lw.Peers, ti, nil)
	if err != nil {
		release()
		return nil, err
	}
	arm.Blocks = c.Shards()
	n := ti.N()
	x := make([]float64, n)
	next := make([]float64, n)
	att := make([]float64, n)
	rec := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
		att[i] = float64(i%101) / 101
		rec[i] = float64(i%97) / 97
	}
	if err := c.BeginRank(x, att, rec, p.Alpha, p.Beta, p.Gamma); err != nil {
		release()
		return nil, err
	}
	const fixedIters = 10
	step := func() error {
		for i := 0; i < fixedIters; i++ {
			if _, err := c.StepRank(next, x); err != nil {
				return err
			}
			x, next = next, x
		}
		return nil
	}
	if err := step(); err != nil { // warm the exchange buffers
		c.EndRank()
		release()
		return nil, err
	}
	arm.IterNS = best(reps, func() {
		if err := step(); err != nil {
			panic(err)
		}
	}) / fixedIters
	c.EndRank()
	st := c.ExchangeStats()
	arm.SendBytesPerIter = int64(st.SentBytes / st.Steps)
	arm.RecvBytesPerIter = int64(st.RecvBytes / st.Steps)
	arm.BoundaryFloats = st.BoundaryFloat
	arm.ResidentBytes = st.ResidentBytes
	for _, rb := range st.ResidentBytes {
		if rb > arm.ResidentMax {
			arm.ResidentMax = rb
		}
	}

	// The same fixed iterations through the single-process kernel (the
	// release handle is still held, so Step may use the worker pool).
	arm.IterLocalNS = best(reps, func() {
		for i := 0; i < fixedIters; i++ {
			ti.Step(next, x, att, rec, p.Alpha, p.Beta, p.Gamma, shards)
			x, next = next, x
		}
	}) / fixedIters
	release()
	return arm, nil
}

// shardsStepped counts workers whose status cursor shows at least one
// completed block step — the proof the distributed path served the
// rank rather than a silent fallback.
func shardsStepped(peers []string) (int, error) {
	stepped := 0
	for _, peer := range peers {
		resp, err := http.Get(peer + "/shard/status")
		if err != nil {
			return 0, err
		}
		var st struct {
			StepSeq uint64 `json:"step_seq"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if st.StepSeq > 0 {
			stepped++
		}
	}
	return stepped, nil
}

// compareResults enforces bitwise equality between two rank results:
// iteration counts, every residual, every score.
func compareResults(label string, got, want *core.Result) error {
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		return fmt.Errorf("%s rank: iterations/converged %d/%v, want %d/%v",
			label, got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	for i := range want.Residuals {
		if got.Residuals[i] != want.Residuals[i] {
			return fmt.Errorf("%s rank: residual %d = %x, want %x",
				label, i, got.Residuals[i], want.Residuals[i])
		}
	}
	for i := range want.Scores {
		if got.Scores[i] != want.Scores[i] {
			return fmt.Errorf("%s rank: score %d = %x, want %x (first differing bit)",
				label, i, got.Scores[i], want.Scores[i])
		}
	}
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
