package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"

	"attrank/internal/core"
	"attrank/internal/impact"
	"attrank/internal/service"
	"attrank/internal/synth"
)

// runImpactSmoke is the end-to-end gate for the multi-indicator layer
// (-impact): it starts an in-process server with -indicators over a
// seeded synthetic corpus, recomputes the impact epoch independently
// through the library path, and cross-checks every served score
// (bit-for-bit — Go's JSON float encoding round-trips float64 exactly)
// and class against the recompute. Exits non-zero on any mismatch.
func runImpactSmoke(papers int, profile string) error {
	prof, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	corpus, err := synth.GenerateSeeded(prof, 1)
	if err != nil {
		return err
	}

	params := core.Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: -1}
	icfg := impact.Config{Enabled: true, Workers: -1}.WithDefaults()
	now := corpus.MaxYear()

	// The independent expectation: the same corpus ranked and classified
	// through the library path, bypassing the HTTP layer entirely.
	res, err := core.OperatorFor(corpus).Rank(now, params)
	if err != nil {
		return err
	}
	want, err := impact.Compute(corpus, res.Scores, now, icfg)
	if err != nil {
		return err
	}

	srv, err := service.New(corpus, now, params)
	if err != nil {
		return err
	}
	srv.SetLogf(nil)
	if err := srv.EnableIndicators(icfg); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- service.ServeListener(ctx, ln, srv.Handler(), service.ServeOptions{})
	}()
	base := "http://" + ln.Addr().String()

	ids := sampleIDs(corpus, 512)
	fmt.Printf("cross-checking %d served papers against the in-process recompute…\n", len(ids))
	checked, err := checkImpactBatch(base, corpus.Lookup, want, ids)
	if err != nil {
		return err
	}
	// A handful of single-paper GETs so both endpoints are on the hook.
	for _, id := range ids[:min(8, len(ids))] {
		if err := checkImpactSingle(base, corpus.Lookup, want, id); err != nil {
			return err
		}
		checked++
	}

	cancel()
	if err := <-serveErr; err != nil {
		return fmt.Errorf("server exited with error: %w", err)
	}
	fmt.Printf("impact smoke OK: %d served views match the recompute bit-for-bit\n", checked)
	return nil
}

// impactWire is the response shape both endpoints share per paper.
type impactWire struct {
	ID         string        `json:"id"`
	Popularity indicatorWire `json:"popularity"`
	Influence  indicatorWire `json:"influence"`
	Impulse    indicatorWire `json:"impulse"`
	CC         indicatorWire `json:"cc"`
}

type indicatorWire struct {
	Score float64 `json:"score"`
	Class string  `json:"class"`
}

// checkImpact compares one served view against the recomputed epoch.
func checkImpact(lookup func(string) (int32, bool), want *impact.Epoch, w impactWire) error {
	idx, ok := lookup(w.ID)
	if !ok {
		return fmt.Errorf("served unknown id %q", w.ID)
	}
	for _, ind := range []struct {
		name string
		ind  impact.Indicator
		got  indicatorWire
	}{
		{"popularity", impact.Popularity, w.Popularity},
		{"influence", impact.Influence, w.Influence},
		{"impulse", impact.Impulse, w.Impulse},
		{"cc", impact.CitationCount, w.CC},
	} {
		wantScore := want.Scores(ind.ind)[idx]
		if math.Float64bits(ind.got.Score) != math.Float64bits(wantScore) {
			return fmt.Errorf("paper %q %s score: served %v, recomputed %v",
				w.ID, ind.name, ind.got.Score, wantScore)
		}
		if wantClass := want.Class(ind.ind, idx).String(); ind.got.Class != wantClass {
			return fmt.Errorf("paper %q %s class: served %s, recomputed %s",
				w.ID, ind.name, ind.got.Class, wantClass)
		}
	}
	return nil
}

func checkImpactSingle(base string, lookup func(string) (int32, bool), want *impact.Epoch, id string) error {
	resp, err := http.Get(base + "/v1/impact/" + id)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/impact/%s: status %d", id, resp.StatusCode)
	}
	var w impactWire
	if err := json.NewDecoder(resp.Body).Decode(&w); err != nil {
		return err
	}
	return checkImpact(lookup, want, w)
}

func checkImpactBatch(base string, lookup func(string) (int32, bool), want *impact.Epoch, ids []string) (int, error) {
	body, err := json.Marshal(map[string][]string{"ids": ids})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/v1/impact/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("POST /v1/impact/batch: status %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			ID     string      `json:"id"`
			Error  string      `json:"error"`
			Impact *impactWire `json:"impact"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	if len(out.Results) != len(ids) {
		return 0, fmt.Errorf("batch returned %d results for %d ids", len(out.Results), len(ids))
	}
	for _, r := range out.Results {
		if r.Impact == nil {
			return 0, fmt.Errorf("batch id %q failed: %s", r.ID, r.Error)
		}
		if err := checkImpact(lookup, want, *r.Impact); err != nil {
			return 0, err
		}
	}
	return len(out.Results), nil
}
