// Command attrank-bench measures the ranking hot path on a synthetic
// power-law citation network and writes the results as JSON (the
// BENCH_core.json committed at the repo root is its output).
//
// Usage:
//
//	attrank-bench [-papers 100000] [-profile dblp] [-out BENCH_core.json] [-reps 20]
//	attrank-bench -serve [-serve-papers 20000] [-serve-dur 3s] [-serve-out BENCH_service.json]
//	attrank-bench -sweep [-sweep-papers 100000] [-sweep-reps 3] [-sweep-out BENCH_sweep.json]
//
// With -sweep it benchmarks the full AttRank parameter-grid sweep (the
// Table-3 workload): the batched blocked-SpMM path (RankBatch through
// eval.SweepAttRank) against the sequential per-cell seed sweep, with a
// runtime bit-equality cross-check between the arms and a B-sweep over
// block widths 1/4/8/16/32 (BENCH_sweep.json). Grid throughput is
// single-threaded work, so run it under GOMAXPROCS=1 for the committed
// numbers.
//
// With -serve it instead benchmarks the HTTP serving path: it starts an
// in-process live server (internal/service + internal/ingest) over a
// seeded synthetic corpus and drives the closed-loop load harness
// (internal/load) against it at 1×/2×/4× of the admission limit,
// reporting sustained RPS, accepted-request latency quantiles and shed
// rates, then verifies graceful shutdown drains every in-flight request
// (BENCH_service.json).
//
// It times, per power-method iteration: the serial CSC reference kernel
// (three sweeps), the legacy parallel path (goroutine-spawning SpMV plus
// separate combine and residual sweeps), and the fused kernel at one
// partition and at one partition per core. It also reports the one-off
// compilation costs the operator cache amortizes (matrix normalization,
// CSR conversion) and a full cold-vs-warm Rank comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"attrank/internal/core"
	"attrank/internal/obs"
	"attrank/internal/sparse"
	"attrank/internal/synth"
)

type report struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Profile     string `json:"profile"`
	Papers      int    `json:"papers"`
	Edges       int    `json:"edges"`
	Dangling    int    `json:"dangling_papers"`
	Reps        int    `json:"reps"`

	// One-off costs the compiled operator pays once per network.
	CompileStochasticNS int64 `json:"compile_stochastic_ns"`
	ConvertCSRNS        int64 `json:"convert_csr_ns"`

	// Per-iteration wall clock (best of reps), in nanoseconds.
	IterSerialNS      int64 `json:"iter_serial_ns"`
	IterLegacyNS      int64 `json:"iter_legacy_parallel_ns"`
	IterFusedSerialNS int64 `json:"iter_fused_parts1_ns"`
	IterFusedNS       int64 `json:"iter_fused_ns"`

	// Full Rank wall clock: cold compiles everything, warm reuses the
	// cached operator and warm-starts from the previous scores.
	RankColdNS    int64   `json:"rank_cold_ns"`
	RankWarmNS    int64   `json:"rank_warm_ns"`
	RankColdIters int     `json:"rank_cold_iterations"`
	RankWarmIters int     `json:"rank_warm_iterations"`
	FusedVsLegacy float64 `json:"fused_vs_legacy_speedup"`
	FusedVsSerial float64 `json:"fused_vs_serial_speedup"`

	// Observability overhead: the same fixed-iteration rank with the
	// obs metric sites live vs turned into no-ops (obs.SetEnabled),
	// normalized per power iteration. The budget is < 2%.
	IterInstrumentedNS   int64   `json:"iter_instrumented_ns"`
	IterUninstrumentedNS int64   `json:"iter_uninstrumented_ns"`
	MetricsOverheadPct   float64 `json:"metrics_overhead_pct"`
}

func main() {
	var (
		papers  = flag.Int("papers", 100000, "synthetic network size")
		profile = flag.String("profile", "dblp", "synthetic profile: hep-th, aps, pmc, dblp")
		out     = flag.String("out", "BENCH_core.json", "output JSON path")
		reps    = flag.Int("reps", 20, "timing repetitions per kernel (best-of)")

		serve       = flag.Bool("serve", false, "benchmark the HTTP serving path under closed-loop load instead of the ranking kernels")
		serveOut    = flag.String("serve-out", "BENCH_service.json", "output JSON path for -serve")
		serveDur    = flag.Duration("serve-dur", 3*time.Second, "duration of each -serve load level")
		servePapers = flag.Int("serve-papers", 20000, "corpus size for -serve")

		sweep       = flag.Bool("sweep", false, "benchmark the full AttRank grid sweep (batched vs sequential) instead of the ranking kernels")
		sweepOut    = flag.String("sweep-out", "BENCH_sweep.json", "output JSON path for -sweep")
		sweepPapers = flag.Int("sweep-papers", 100000, "synthetic network size for -sweep")
		sweepReps   = flag.Int("sweep-reps", 3, "timing repetitions per -sweep arm (best-of)")

		cluster          = flag.Bool("cluster", false, "benchmark a replicated cluster (leader + followers over loopback): read scaling per replica and crash-recovery bit-equality")
		clusterOut       = flag.String("cluster-out", "BENCH_cluster.json", "output JSON path for -cluster")
		clusterDur       = flag.Duration("cluster-dur", 3*time.Second, "duration of each -cluster load level")
		clusterPapers    = flag.Int("cluster-papers", 20000, "corpus size for -cluster")
		clusterFollowers = flag.Int("cluster-followers", 3, "follower count for -cluster (min 3)")
	)
	flag.Parse()
	var err error
	switch {
	case *cluster:
		err = runCluster(*clusterPapers, *clusterFollowers, *clusterOut, *clusterDur)
	case *serve:
		err = runServe(*servePapers, *serveOut, *serveDur)
	case *sweep:
		err = runSweep(*sweepPapers, *profile, *sweepOut, *sweepReps)
	default:
		err = run(*papers, *profile, *out, *reps)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrank-bench:", err)
		os.Exit(1)
	}
}

func run(papers int, profile, out string, reps int) error {
	prof, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	net, err := synth.Generate(prof)
	if err != nil {
		return err
	}
	r := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Profile:     prof.Name,
		Papers:      net.N(),
		Edges:       net.Edges(),
		Reps:        reps,
	}

	// One-off compilation costs.
	t0 := time.Now()
	s, err := net.StochasticMatrix()
	if err != nil {
		return err
	}
	r.CompileStochasticNS = time.Since(t0).Nanoseconds()
	r.Dangling = s.DanglingCount()

	pool := sparse.NewPool(0)
	defer pool.Close()
	t0 = time.Now()
	fused := s.Fused(pool)
	r.ConvertCSRNS = time.Since(t0).Nanoseconds()

	n := net.N()
	now := net.MaxYear()
	att := core.AttentionVector(net, now, 3)
	rec := core.RecencyVector(net, now, -0.16)
	x := sparse.Uniform(n)
	next := make([]float64, n)
	legacy := s.Parallel(0)

	r.IterSerialNS = best(reps, func() {
		s.MulVec(next, x)
		for i := range next {
			next[i] = 0.5*next[i] + 0.3*att[i] + 0.2*rec[i]
		}
		_ = sparse.L1Diff(next, x)
	})
	r.IterLegacyNS = best(reps, func() {
		legacy.MulVec(next, x)
		for i := range next {
			next[i] = 0.5*next[i] + 0.3*att[i] + 0.2*rec[i]
		}
		_ = sparse.L1Diff(next, x)
	})
	r.IterFusedSerialNS = best(reps, func() {
		fused.Step(next, x, att, rec, 0.5, 0.3, 0.2, 1)
	})
	r.IterFusedNS = best(reps, func() {
		fused.Step(next, x, att, rec, 0.5, 0.3, 0.2, pool.Size())
	})
	r.FusedVsLegacy = float64(r.IterLegacyNS) / float64(r.IterFusedNS)
	r.FusedVsSerial = float64(r.IterSerialNS) / float64(r.IterFusedNS)

	// Full cold vs warm rank through the operator cache.
	p := core.Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: -1}
	coldDur, coldRes, err := rankOnce(core.Compile(net), now, p)
	if err != nil {
		return err
	}
	r.RankColdNS = coldDur
	r.RankColdIters = coldRes.Iterations

	op := core.OperatorFor(net)
	if _, _, err := rankOnce(op, now, p); err != nil { // prime the cache
		return err
	}
	warm := p
	warm.Start = coldRes.Scores
	warmDur, warmRes, err := rankOnce(op, now, warm)
	if err != nil {
		return err
	}
	r.RankWarmNS = warmDur
	r.RankWarmIters = warmRes.Iterations

	// Metrics overhead: run the identical warm rank pinned to a fixed
	// iteration count (Tol unreachable, MaxIter as the stop), with the
	// obs sites recording and then disabled. Per-iteration cost is the
	// honest unit — the per-iteration residual histogram is the only
	// metric site inside the iteration loop.
	const fixedIters = 30
	fixed := warm
	fixed.Tol = 1e-300
	fixed.MaxIter = fixedIters
	rankFixed := func() {
		if _, _, err := rankOnce(op, now, fixed); err != nil {
			panic(err)
		}
	}
	rankFixed() // warm the cache under the fixed parameters
	// Interleave the enabled/disabled reps so thermal and scheduler
	// drift hits both sides equally instead of biasing whichever batch
	// ran second.
	bestOn, bestOff := int64(1<<63-1), int64(1<<63-1)
	for i := 0; i < reps; i++ {
		obs.SetEnabled(true)
		t0 := time.Now()
		rankFixed()
		if d := time.Since(t0).Nanoseconds(); d < bestOn {
			bestOn = d
		}
		obs.SetEnabled(false)
		t0 = time.Now()
		rankFixed()
		if d := time.Since(t0).Nanoseconds(); d < bestOff {
			bestOff = d
		}
	}
	obs.SetEnabled(true)
	r.IterInstrumentedNS = bestOn / fixedIters
	r.IterUninstrumentedNS = bestOff / fixedIters
	r.MetricsOverheadPct = 100 * (float64(r.IterInstrumentedNS) - float64(r.IterUninstrumentedNS)) /
		float64(r.IterUninstrumentedNS)

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("papers=%d edges=%d dangling=%d\n", r.Papers, r.Edges, r.Dangling)
	fmt.Printf("per-iteration: serial=%s legacy=%s fused(1)=%s fused(%d)=%s\n",
		time.Duration(r.IterSerialNS), time.Duration(r.IterLegacyNS),
		time.Duration(r.IterFusedSerialNS), pool.Size(), time.Duration(r.IterFusedNS))
	fmt.Printf("fused speedup: %.2fx vs legacy parallel, %.2fx vs serial\n", r.FusedVsLegacy, r.FusedVsSerial)
	fmt.Printf("full rank: cold=%s (%d iters) warm=%s (%d iters)\n",
		time.Duration(r.RankColdNS), r.RankColdIters, time.Duration(r.RankWarmNS), r.RankWarmIters)
	fmt.Printf("metrics overhead: instrumented=%s/iter uninstrumented=%s/iter (%+.2f%%)\n",
		time.Duration(r.IterInstrumentedNS), time.Duration(r.IterUninstrumentedNS), r.MetricsOverheadPct)
	fmt.Printf("wrote %s\n", out)
	return nil
}

func rankOnce(op *core.Operator, now int, p core.Params) (int64, *core.Result, error) {
	t0 := time.Now()
	res, err := op.Rank(now, p)
	if err != nil {
		return 0, nil, err
	}
	return time.Since(t0).Nanoseconds(), res, nil
}

// best returns the fastest of reps timed runs of fn, in nanoseconds —
// the standard way to suppress scheduling noise in microbenchmarks.
func best(reps int, fn func()) int64 {
	bestNS := int64(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Nanoseconds(); d < bestNS {
			bestNS = d
		}
	}
	return bestNS
}
