// Command attrank-bench measures the ranking hot path on a synthetic
// power-law citation network and writes the results as JSON (the
// BENCH_core.json committed at the repo root is its output).
//
// Usage:
//
//	attrank-bench [-papers 100000] [-profile dblp] [-out BENCH_core.json] [-reps 20]
//	attrank-bench -serve [-serve-papers 20000] [-serve-dur 3s] [-serve-out BENCH_service.json]
//	attrank-bench -sweep [-sweep-papers 100000] [-sweep-reps 3] [-sweep-out BENCH_sweep.json]
//
// With -sweep it benchmarks the full AttRank parameter-grid sweep (the
// Table-3 workload): the batched blocked-SpMM path (RankBatch through
// eval.SweepAttRank) against the sequential per-cell seed sweep, with a
// runtime bit-equality cross-check between the arms and a B-sweep over
// block widths 1/4/8/16/32 (BENCH_sweep.json). Grid throughput is
// single-threaded work, so run it under GOMAXPROCS=1 for the committed
// numbers.
//
// With -serve it instead benchmarks the HTTP serving path: it starts an
// in-process live server (internal/service + internal/ingest) over a
// seeded synthetic corpus and drives the closed-loop load harness
// (internal/load) against it at 1×/2×/4× of the admission limit,
// reporting sustained RPS, accepted-request latency quantiles and shed
// rates, then verifies graceful shutdown drains every in-flight request
// (BENCH_service.json).
//
// It times, per power-method iteration: the serial CSC reference kernel
// (three sweeps), the legacy parallel path (goroutine-spawning SpMV plus
// separate combine and residual sweeps), the retired CSR fused kernel,
// and the production tiled kernel (RCM-relabeled, compressed 16-bit
// tiles) at one partition and at one partition per core. It also reports
// the layout's compression (bytes per nonzero, tile shape), the one-off
// compile pipeline costs the operator cache amortizes (normalization and
// relabeling run concurrently, then tile cutting) and a full
// cold-vs-warm Rank comparison.
//
// With -smoke it runs the bit-equality gate instead: on a seeded 10k
// synthetic graph the tiled kernel (under its RCM relabeling), the CSR
// fused kernel and the serial CSC reference must produce bit-identical
// iterates, and the operator's parallel path must match its serial path
// bit-for-bit. Exits non-zero on any mismatch.
//
// With -impact it runs the impact-layer smoke: an in-process server with
// -indicators over a seeded corpus, every served indicator score and
// C1–C5 class cross-checked bit-for-bit against an independent
// in-process recompute through internal/impact. Exits non-zero on any
// mismatch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"attrank/internal/core"
	"attrank/internal/obs"
	"attrank/internal/sparse"
	"attrank/internal/synth"
)

type report struct {
	GeneratedAt string `json:"generated_at"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	Profile     string `json:"profile"`
	Papers      int    `json:"papers"`
	Edges       int    `json:"edges"`
	Dangling    int    `json:"dangling_papers"`
	Reps        int    `json:"reps"`

	// One-off costs the compiled operator pays once per network. The
	// stochastic normalization and the RCM relabeling run concurrently;
	// the pipeline speedup is their serial sum over the observed wall
	// clock. ConvertCSRNS is the retired CSR fused arm's build, kept for
	// comparison.
	CompileStochasticNS    int64   `json:"compile_stochastic_ns"`
	CompileRelabelNS       int64   `json:"compile_relabel_ns"`
	CompileTiledNS         int64   `json:"compile_tiled_ns"`
	CompileWallNS          int64   `json:"compile_pipeline_wall_ns"`
	CompilePipelineSpeedup float64 `json:"compile_pipeline_speedup"`
	ConvertCSRNS           int64   `json:"convert_csr_ns"`

	// Compiled tile layout: the bytes the kernel streams per nonzero
	// (values + 16-bit column words + row pointers + tile headers; the
	// CSR baseline is 12B/nnz plus row pointers) and the tile shape.
	BytesPerNNZ      float64 `json:"bytes_per_nnz"`
	IndexBytes       int64   `json:"index_bytes"`
	Tiles            int     `json:"tiles"`
	Windows          int     `json:"windows"`
	TileRowOccupancy float64 `json:"tile_row_occupancy"`

	// Per-iteration wall clock (best of reps), in nanoseconds. The
	// fused numbers measure the production tiled kernel; the retired
	// CSR fused kernel keeps its own field.
	IterSerialNS      int64 `json:"iter_serial_ns"`
	IterLegacyNS      int64 `json:"iter_legacy_parallel_ns"`
	IterCSRFusedNS    int64 `json:"iter_csr_fused_ns"`
	IterFusedSerialNS int64 `json:"iter_fused_parts1_ns"`
	IterFusedNS       int64 `json:"iter_fused_ns"`

	// Full Rank wall clock: cold compiles everything, warm reuses the
	// cached operator and warm-starts from the previous scores.
	RankColdNS    int64   `json:"rank_cold_ns"`
	RankWarmNS    int64   `json:"rank_warm_ns"`
	RankColdIters int     `json:"rank_cold_iterations"`
	RankWarmIters int     `json:"rank_warm_iterations"`
	FusedVsLegacy float64 `json:"fused_vs_legacy_speedup"`
	FusedVsSerial float64 `json:"fused_vs_serial_speedup"`
	TiledVsCSR    float64 `json:"tiled_vs_csr_fused_speedup"`

	// Observability overhead: the same fixed-iteration rank with the
	// obs metric sites live vs turned into no-ops (obs.SetEnabled),
	// normalized per power iteration. The budget is < 2%. The measured
	// delta on a quiet machine is routinely smaller than run-to-run
	// timing noise and can come out negative; the headline figure is
	// therefore clamped at zero, with the raw measurement and the
	// noise floor (the rep spread, per arm: (median−min)/min) reported
	// alongside so the clamp is auditable.
	IterInstrumentedNS         int64   `json:"iter_instrumented_ns"`
	IterUninstrumentedNS       int64   `json:"iter_uninstrumented_ns"`
	MetricsOverheadPct         float64 `json:"metrics_overhead_pct"`
	MetricsOverheadMeasuredPct float64 `json:"metrics_overhead_measured_pct"`
	MetricsOverheadNoisePct    float64 `json:"metrics_overhead_noise_pct"`
}

func main() {
	var (
		papers  = flag.Int("papers", 100000, "synthetic network size")
		profile = flag.String("profile", "dblp", "synthetic profile: hep-th, aps, pmc, dblp")
		out     = flag.String("out", "BENCH_core.json", "output JSON path")
		reps    = flag.Int("reps", 20, "timing repetitions per kernel (best-of)")

		serve       = flag.Bool("serve", false, "benchmark the HTTP serving path under closed-loop load instead of the ranking kernels")
		serveOut    = flag.String("serve-out", "BENCH_service.json", "output JSON path for -serve")
		serveDur    = flag.Duration("serve-dur", 3*time.Second, "duration of each -serve load level")
		servePapers = flag.Int("serve-papers", 20000, "corpus size for -serve")

		sweep       = flag.Bool("sweep", false, "benchmark the full AttRank grid sweep (batched vs sequential) instead of the ranking kernels")
		sweepOut    = flag.String("sweep-out", "BENCH_sweep.json", "output JSON path for -sweep")
		sweepPapers = flag.Int("sweep-papers", 100000, "synthetic network size for -sweep")
		sweepReps   = flag.Int("sweep-reps", 3, "timing repetitions per -sweep arm (best-of)")

		smoke       = flag.Bool("smoke", false, "run the bit-equality smoke (tiled vs csr fused vs serial on a seeded graph) and exit non-zero on mismatch")
		smokePapers = flag.Int("smoke-papers", 10000, "synthetic network size for -smoke")

		impactB      = flag.Bool("impact", false, "run the impact-layer smoke: serve a seeded corpus with -indicators and cross-check every served score and class against an in-process recompute (exits non-zero on mismatch)")
		impactPapers = flag.Int("impact-papers", 2000, "corpus size for -impact")

		cluster          = flag.Bool("cluster", false, "benchmark a replicated cluster (leader + followers over loopback): read scaling per replica and crash-recovery bit-equality")
		clusterOut       = flag.String("cluster-out", "BENCH_cluster.json", "output JSON path for -cluster")
		clusterDur       = flag.Duration("cluster-dur", 3*time.Second, "duration of each -cluster load level")
		clusterPapers    = flag.Int("cluster-papers", 20000, "corpus size for -cluster")
		clusterFollowers = flag.Int("cluster-followers", 3, "follower count for -cluster (min 3)")

		ingestB        = flag.Bool("ingest", false, "benchmark the incremental-ranking push path against warm full re-ranks, with exactness and bit-equality gates (exits non-zero on any violation)")
		ingestOut      = flag.String("ingest-out", "BENCH_ingest.json", "output JSON path for -ingest")
		ingestPapers   = flag.Int("ingest-papers", 100000, "corpus size for -ingest")
		ingestWrites   = flag.Int("ingest-writes", 400, "single-citation writes pushed through one pusher in -ingest")
		ingestFullReps = flag.Int("ingest-full-reps", 25, "warm full single-citation re-ranks timed in -ingest")
		ingestCheck    = flag.Int("ingest-check-every", 50, "push writes between exact-deviation checks in -ingest (0 disables)")
		ingestLiveWr   = flag.Int("ingest-live-writes", 150, "live rank-per-write Ingester writes per arm in -ingest")
		ingestPushTol  = flag.Float64("ingest-push-tol", core.DefaultPushTol, "push settle tolerance for -ingest")

		shardB      = flag.Bool("shard", false, "benchmark sharded ranking over in-process loopback shard workers, with a bit-equality gate against the single-process kernel (exits non-zero on the first differing bit)")
		shardOut    = flag.String("shard-out", "BENCH_shard.json", "output JSON path for -shard")
		shardPapers = flag.Int("shard-papers", 100000, "synthetic network size for -shard")
		shardCounts = flag.String("shard-counts", "1,2,4", "comma-separated shard counts for -shard")
		shardReps   = flag.Int("shard-reps", 5, "timing repetitions per shard count in -shard (best-of)")
	)
	flag.Parse()
	var err error
	switch {
	case *shardB:
		err = runShard(*shardPapers, *profile, *shardOut, *shardCounts, *shardReps)
	case *smoke:
		err = runSmoke(*smokePapers, *profile)
	case *impactB:
		err = runImpactSmoke(*impactPapers, *profile)
	case *ingestB:
		err = runIngest(*ingestPapers, *ingestWrites, *ingestFullReps, *ingestCheck, *ingestLiveWr, *profile, *ingestOut, *ingestPushTol)
	case *cluster:
		err = runCluster(*clusterPapers, *clusterFollowers, *clusterOut, *clusterDur)
	case *serve:
		err = runServe(*servePapers, *serveOut, *serveDur)
	case *sweep:
		err = runSweep(*sweepPapers, *profile, *sweepOut, *sweepReps)
	default:
		err = run(*papers, *profile, *out, *reps)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrank-bench:", err)
		os.Exit(1)
	}
}

func run(papers int, profile, out string, reps int) error {
	prof, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	fmt.Printf("generating %s network with %d papers…\n", prof.Name, prof.Papers)
	net, err := synth.Generate(prof)
	if err != nil {
		return err
	}
	r := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Profile:     prof.Name,
		Papers:      net.N(),
		Edges:       net.Edges(),
		Reps:        reps,
	}

	// One-off compilation costs: the operator's concurrent compile
	// pipeline (normalize ∥ relabel, then tile cutting), with the layout
	// it produced, plus the retired CSR fused arm's conversion.
	op := core.OperatorFor(net)
	cs, err := op.PrimeKernel()
	if err != nil {
		return err
	}
	r.CompileStochasticNS = cs.StochasticNS
	r.CompileRelabelNS = cs.RelabelNS
	r.CompileTiledNS = cs.TiledNS
	r.CompileWallNS = cs.WallNS
	if cs.WallNS > 0 {
		r.CompilePipelineSpeedup = float64(cs.StochasticNS+cs.RelabelNS+cs.TiledNS) / float64(cs.WallNS)
	}
	r.BytesPerNNZ = cs.Layout.BytesPerNNZ
	r.IndexBytes = cs.Layout.IndexBytes
	r.Tiles = cs.Layout.Tiles
	r.Windows = cs.Layout.Windows
	r.TileRowOccupancy = cs.Layout.Occupancy

	s, err := net.StochasticMatrix()
	if err != nil {
		return err
	}
	r.Dangling = s.DanglingCount()

	pool := sparse.NewPool(0)
	defer pool.Close()
	t0 := time.Now()
	fused := s.Fused(pool)
	r.ConvertCSRNS = time.Since(t0).Nanoseconds()

	n := net.N()
	now := net.MaxYear()
	att := core.AttentionVector(net, now, 3)
	rec := core.RecencyVector(net, now, -0.16)
	x := sparse.Uniform(n)
	next := make([]float64, n)
	legacy := s.Parallel(0)

	// The tiled kernel works in relabeled (storage) space: rebuild the
	// operator's layout at the sparse layer and permute the vectors in
	// once, exactly as core.Operator does per Rank.
	deg := make([]int32, n)
	for i := range deg {
		deg[i] = int32(net.Degree(int32(i)))
	}
	perm := s.DegreeOrder(sparse.RCMOrder(n, deg, net.Neighbors))
	tiled := s.Tiled(pool, perm)
	permute := func(v []float64) []float64 {
		out := make([]float64, n)
		for i, p := range perm {
			out[p] = v[i]
		}
		return out
	}
	xp, attP, recP := permute(x), permute(att), permute(rec)
	nextP := make([]float64, n)

	r.IterSerialNS = best(reps, func() {
		s.MulVec(next, x)
		for i := range next {
			next[i] = 0.5*next[i] + 0.3*att[i] + 0.2*rec[i]
		}
		_ = sparse.L1Diff(next, x)
	})
	r.IterLegacyNS = best(reps, func() {
		legacy.MulVec(next, x)
		for i := range next {
			next[i] = 0.5*next[i] + 0.3*att[i] + 0.2*rec[i]
		}
		_ = sparse.L1Diff(next, x)
	})
	r.IterCSRFusedNS = best(reps, func() {
		fused.Step(next, x, att, rec, 0.5, 0.3, 0.2, pool.Size())
	})
	r.IterFusedSerialNS = best(reps, func() {
		tiled.Step(nextP, xp, attP, recP, 0.5, 0.3, 0.2, 1)
	})
	r.IterFusedNS = best(reps, func() {
		tiled.Step(nextP, xp, attP, recP, 0.5, 0.3, 0.2, pool.Size())
	})
	r.FusedVsLegacy = float64(r.IterLegacyNS) / float64(r.IterFusedNS)
	r.FusedVsSerial = float64(r.IterSerialNS) / float64(r.IterFusedNS)
	r.TiledVsCSR = float64(r.IterCSRFusedNS) / float64(r.IterFusedNS)

	// Full cold vs warm rank through the operator cache.
	p := core.Params{Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: -0.16, Workers: -1}
	coldDur, coldRes, err := rankOnce(core.Compile(net), now, p)
	if err != nil {
		return err
	}
	r.RankColdNS = coldDur
	r.RankColdIters = coldRes.Iterations

	if _, _, err := rankOnce(op, now, p); err != nil { // prime the vector caches
		return err
	}
	warm := p
	warm.Start = coldRes.Scores
	warmDur, warmRes, err := rankOnce(op, now, warm)
	if err != nil {
		return err
	}
	r.RankWarmNS = warmDur
	r.RankWarmIters = warmRes.Iterations

	// Metrics overhead: run the identical warm rank pinned to a fixed
	// iteration count (Tol unreachable, MaxIter as the stop), with the
	// obs sites recording and then disabled. Per-iteration cost is the
	// honest unit — the per-iteration residual histogram is the only
	// metric site inside the iteration loop.
	const fixedIters = 30
	fixed := warm
	fixed.Tol = 1e-300
	fixed.MaxIter = fixedIters
	rankFixed := func() {
		if _, _, err := rankOnce(op, now, fixed); err != nil {
			panic(err)
		}
	}
	rankFixed() // warm the cache under the fixed parameters
	// Interleave the enabled/disabled reps so thermal and scheduler
	// drift hits both sides equally instead of biasing whichever batch
	// ran second.
	onNS := make([]int64, 0, reps)
	offNS := make([]int64, 0, reps)
	for i := 0; i < reps; i++ {
		obs.SetEnabled(true)
		t0 := time.Now()
		rankFixed()
		onNS = append(onNS, time.Since(t0).Nanoseconds())
		obs.SetEnabled(false)
		t0 = time.Now()
		rankFixed()
		offNS = append(offNS, time.Since(t0).Nanoseconds())
	}
	obs.SetEnabled(true)
	bestOn, noiseOn := repSpread(onNS)
	bestOff, noiseOff := repSpread(offNS)
	r.IterInstrumentedNS = bestOn / fixedIters
	r.IterUninstrumentedNS = bestOff / fixedIters
	r.MetricsOverheadMeasuredPct = 100 * (float64(r.IterInstrumentedNS) - float64(r.IterUninstrumentedNS)) /
		float64(r.IterUninstrumentedNS)
	r.MetricsOverheadNoisePct = noiseOn
	if noiseOff > noiseOn {
		r.MetricsOverheadNoisePct = noiseOff
	}
	// A negative measured overhead only means the delta drowned in
	// scheduler noise — report the true cost as zero, never negative.
	r.MetricsOverheadPct = r.MetricsOverheadMeasuredPct
	if r.MetricsOverheadPct < 0 {
		r.MetricsOverheadPct = 0
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("papers=%d edges=%d dangling=%d\n", r.Papers, r.Edges, r.Dangling)
	fmt.Printf("layout: %.2f B/nnz (csr: 12+), %d tiles, %d windows, occupancy %.3f\n",
		r.BytesPerNNZ, r.Tiles, r.Windows, r.TileRowOccupancy)
	fmt.Printf("compile: stoch=%s relabel=%s tiles=%s wall=%s (%.2fx pipeline)\n",
		time.Duration(r.CompileStochasticNS), time.Duration(r.CompileRelabelNS),
		time.Duration(r.CompileTiledNS), time.Duration(r.CompileWallNS), r.CompilePipelineSpeedup)
	fmt.Printf("per-iteration: serial=%s legacy=%s csr-fused=%s tiled(1)=%s tiled(%d)=%s\n",
		time.Duration(r.IterSerialNS), time.Duration(r.IterLegacyNS), time.Duration(r.IterCSRFusedNS),
		time.Duration(r.IterFusedSerialNS), pool.Size(), time.Duration(r.IterFusedNS))
	fmt.Printf("tiled speedup: %.2fx vs legacy parallel, %.2fx vs serial, %.2fx vs csr fused\n",
		r.FusedVsLegacy, r.FusedVsSerial, r.TiledVsCSR)
	fmt.Printf("full rank: cold=%s (%d iters) warm=%s (%d iters)\n",
		time.Duration(r.RankColdNS), r.RankColdIters, time.Duration(r.RankWarmNS), r.RankWarmIters)
	fmt.Printf("metrics overhead: instrumented=%s/iter uninstrumented=%s/iter measured %+.2f%% ±%.2f%% noise -> reported %.2f%%\n",
		time.Duration(r.IterInstrumentedNS), time.Duration(r.IterUninstrumentedNS),
		r.MetricsOverheadMeasuredPct, r.MetricsOverheadNoisePct, r.MetricsOverheadPct)
	fmt.Printf("wrote %s\n", out)
	return nil
}

func rankOnce(op *core.Operator, now int, p core.Params) (int64, *core.Result, error) {
	t0 := time.Now()
	res, err := op.Rank(now, p)
	if err != nil {
		return 0, nil, err
	}
	return time.Since(t0).Nanoseconds(), res, nil
}

// best returns the fastest of reps timed runs of fn, in nanoseconds —
// the standard way to suppress scheduling noise in microbenchmarks.
func best(reps int, fn func()) int64 {
	bestNS := int64(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Nanoseconds(); d < bestNS {
			bestNS = d
		}
	}
	return bestNS
}

// repSpread reduces one arm's rep timings to its minimum and a noise
// floor: the median's relative distance from that minimum, in percent.
// A measured delta between two arms smaller than either arm's spread is
// indistinguishable from scheduler noise.
func repSpread(ns []int64) (min int64, noisePct float64) {
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	min = sorted[0]
	median := sorted[len(sorted)/2]
	if min > 0 {
		noisePct = 100 * float64(median-min) / float64(min)
	}
	return min, noisePct
}
