package main

import (
	"fmt"

	"attrank/internal/core"
	"attrank/internal/sparse"
	"attrank/internal/synth"
)

// runSmoke is the bit-equality gate verify.sh ends with: on a seeded
// synthetic graph, every kernel generation must produce bit-identical
// iterates. It drives three arms through the same power iterations —
// the serial CSC reference (three sweeps), the retired CSR fused
// kernel, and the production tiled kernel under its RCM relabeling,
// partitioned across the pool — comparing every score of every
// iteration bitwise, then cross-checks the operator's parallel Rank
// against its serial Rank the same way. Any mismatch is an error, which
// main turns into a non-zero exit.
func runSmoke(papers int, profile string) error {
	prof, err := synth.ProfileByName(profile)
	if err != nil {
		return err
	}
	prof = prof.Scale(float64(papers) / float64(prof.Papers))
	net, err := synth.Generate(prof)
	if err != nil {
		return err
	}
	s, err := net.StochasticMatrix()
	if err != nil {
		return err
	}
	n := net.N()
	now := net.MaxYear()
	const alpha, beta, gamma = 0.5, 0.3, 0.2
	att := core.AttentionVector(net, now, 3)
	rec := core.RecencyVector(net, now, -0.16)

	pool := sparse.NewPool(0)
	defer pool.Close()
	fused := s.Fused(pool)
	deg := make([]int32, n)
	for i := range deg {
		deg[i] = int32(net.Degree(int32(i)))
	}
	perm := s.DegreeOrder(sparse.RCMOrder(n, deg, net.Neighbors))
	tiled := s.Tiled(pool, perm)
	permute := func(dst, src []float64) {
		for i, p := range perm {
			dst[p] = src[i]
		}
	}
	attP := make([]float64, n)
	recP := make([]float64, n)
	permute(attP, att)
	permute(recP, rec)

	x := sparse.Uniform(n)
	want := make([]float64, n)
	got := make([]float64, n)
	xp := make([]float64, n)
	nextP := make([]float64, n)
	permute(xp, x)
	const iters = 25
	for it := 0; it < iters; it++ {
		// Serial CSC reference: the ground truth every kernel reproduces.
		s.MulVec(want, x)
		for i := range want {
			want[i] = alpha*want[i] + beta*att[i] + gamma*rec[i]
		}
		// CSR fused kernel, one partition per pool worker.
		fused.Step(got, x, att, rec, alpha, beta, gamma, pool.Size())
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("smoke: iter %d: csr fused score[%d] = %v, serial %v (not bit-identical)",
					it, i, got[i], want[i])
			}
		}
		// Tiled kernel in relabeled space; compare through the permutation.
		tiled.Step(nextP, xp, attP, recP, alpha, beta, gamma, pool.Size())
		for i := range want {
			if nextP[perm[i]] != want[i] {
				return fmt.Errorf("smoke: iter %d: tiled score[%d] = %v, serial %v (not bit-identical)",
					it, i, nextP[perm[i]], want[i])
			}
		}
		x, want = want, x
		xp, nextP = nextP, xp
	}

	// The operator boundary: parallel tiled Rank vs the serial reference
	// Rank, scores in original paper order.
	op := core.Compile(net)
	defer op.Close()
	p := core.Params{Alpha: alpha, Beta: beta, Gamma: gamma, AttentionYears: 3, W: -0.16, Workers: -1}
	par, err := op.Rank(now, p)
	if err != nil {
		return err
	}
	p.Workers = 0
	ser, err := op.Rank(now, p)
	if err != nil {
		return err
	}
	if par.Iterations != ser.Iterations || par.Converged != ser.Converged {
		return fmt.Errorf("smoke: rank iters/converged %d/%v parallel vs %d/%v serial",
			par.Iterations, par.Converged, ser.Iterations, ser.Converged)
	}
	for i := range ser.Scores {
		if par.Scores[i] != ser.Scores[i] {
			return fmt.Errorf("smoke: rank score[%d] = %v parallel, %v serial (not bit-identical)",
				i, par.Scores[i], ser.Scores[i])
		}
	}
	fmt.Printf("smoke: OK — %d iterations × %d papers bit-identical across serial, csr fused and tiled kernels; parallel Rank == serial Rank (%d iters)\n",
		iters, n, ser.Iterations)
	return nil
}
