package main

import (
	"os"
	"path/filepath"
	"testing"
)

// Fast experiments run end to end at a tiny scale; the heavy sweeps
// (fig2–fig5) are covered by the benchmark harness and integration tests.
func TestRunFastExperiments(t *testing.T) {
	for _, exp := range []string{"fig1a", "tab1", "tab2", "wfit", "conv"} {
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, "", 0.05, "rho", ""); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunSingleDataset(t *testing.T) {
	if err := run("tab2", "hep-th", 0.05, "rho", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run("tab2", "", 0.05, "rho", dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table2.csv")); err != nil {
		t.Errorf("table2.csv not written: %v", err)
	}
	if err := run("fig1a", "", 0.05, "rho", dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1a.csv")); err != nil {
		t.Errorf("fig1a.csv not written: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("figZZ", "", 0.1, "rho", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("tab2", "marsnet", 0.1, "rho", ""); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRunStabilityAndOrigin(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness sweeps are slow")
	}
	if err := run("stability", "hep-th", 0.08, "rho", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("origin", "dblp", 0.05, "rho", ""); err != nil {
		t.Fatal(err)
	}
}
