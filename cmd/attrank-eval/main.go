// Command attrank-eval regenerates the tables and figures of the paper's
// evaluation section on the synthetic datasets and renders them in the
// terminal.
//
// Usage:
//
//	attrank-eval -exp fig3 [-dataset dblp] [-scale 0.5] [-metric rho]
//	attrank-eval -exp all -scale 0.25
//
// Paper experiments: fig1a, fig1b, tab1, tab2, fig2, fig6, fig7, fig3,
// fig4, fig5, conv, wfit, best (see DESIGN.md §3 for the mapping).
// Extensions: stability (across generator seeds), origin (across split
// positions), calib (decile lift), coldstart (recent-paper subset),
// trend (emerging-topic detection), preq (year-by-year prequential).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"attrank/internal/eval"
	"attrank/internal/textplot"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig1a, fig1b, tab1, tab2, fig2, fig3, fig4, fig5, conv, wfit, all)")
		dataset = flag.String("dataset", "", "restrict to one dataset (hep-th, aps, pmc, dblp); default all where applicable")
		scale   = flag.Float64("scale", 0.5, "dataset size multiplier (1 = full synthetic size)")
		metric  = flag.String("metric", "rho", "metric for fig2: rho or ndcg")
		csvDir  = flag.String("csv", "", "also write the experiment's data as CSV files into this directory")
	)
	flag.Parse()
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "attrank-eval: -exp is required")
		flag.Usage()
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "attrank-eval:", err)
			os.Exit(1)
		}
	}
	if err := run(*exp, *dataset, *scale, *metric, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "attrank-eval:", err)
		os.Exit(1)
	}
}

// csvWriter is implemented by every exportable experiment result.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// writeCSV persists one experiment result when -csv was given.
func writeCSV(dir, name string, r csvWriter) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := r.WriteCSV(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		fmt.Printf("(wrote %s)\n", path)
	}
	return werr
}

func run(exp, dataset string, scale float64, metricName, csvDir string) error {
	if exp == "all" {
		for _, e := range []string{"fig1a", "fig1b", "tab1", "tab2", "wfit", "fig2", "fig3", "fig4", "fig5", "conv", "stability", "origin", "calib", "fig6", "fig7", "best", "coldstart", "trend", "preq", "ci"} {
			fmt.Printf("\n================ %s ================\n", e)
			if err := run(e, dataset, scale, metricName, csvDir); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	}

	loadAll := func() ([]eval.Dataset, error) {
		if dataset != "" {
			d, err := eval.LoadDataset(dataset, scale)
			if err != nil {
				return nil, err
			}
			return []eval.Dataset{d}, nil
		}
		return eval.LoadDatasets(scale)
	}
	loadOne := func(def string) (eval.Dataset, error) {
		name := dataset
		if name == "" {
			name = def
		}
		return eval.LoadDataset(name, scale)
	}

	switch exp {
	case "fig1a":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		r := eval.Fig1a(ds, 10)
		if err := writeCSV(csvDir, "fig1a", r); err != nil {
			return err
		}
		return renderFig1a(r, ds)
	case "fig1b":
		d, err := loadOne("pmc")
		if err != nil {
			return err
		}
		r, err := eval.Fig1b(d)
		if err != nil {
			return err
		}
		return renderFig1b(r, d)
	case "tab1":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		r, err := eval.Table1(ds)
		if err != nil {
			return err
		}
		return renderTable1(r, ds)
	case "tab2":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		r, err := eval.Table2(ds)
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "table2", r); err != nil {
			return err
		}
		return renderTable2(r, ds)
	case "fig2":
		d, err := loadOne("dblp")
		if err != nil {
			return err
		}
		m := eval.Rho()
		if metricName == "ndcg" {
			m = eval.NDCGAt(50)
		}
		r, err := eval.Fig2(d, m)
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "fig2-"+d.Name+"-"+m.Name, r); err != nil {
			return err
		}
		return renderFig2(r)
	case "fig3", "fig4":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		for _, d := range ds {
			var r eval.SeriesResult
			var err error
			if exp == "fig3" {
				r, err = eval.Fig3(d)
			} else {
				r, err = eval.Fig4(d)
			}
			if err != nil {
				return err
			}
			if err := writeCSV(csvDir, exp+"-"+d.Name, r); err != nil {
				return err
			}
			renderSeries(r, "test ratio")
		}
		return nil
	case "fig5":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		for _, d := range ds {
			r, err := eval.Fig5(d)
			if err != nil {
				return err
			}
			if err := writeCSV(csvDir, "fig5-"+d.Name, r); err != nil {
				return err
			}
			renderSeries(r, "k")
		}
		return nil
	case "conv":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		r, err := eval.Convergence(ds)
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "convergence", r); err != nil {
			return err
		}
		return renderConvergence(r, ds)
	case "wfit":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		r, err := eval.WFit(ds, 10)
		if err != nil {
			return err
		}
		return renderWFit(r, ds)
	case "stability":
		name := dataset
		if name == "" {
			name = "dblp"
		}
		r, err := eval.SeedStability(name, scale/2, []int64{1, 2, 3, 4, 5}, eval.Rho())
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "stability-"+name, r); err != nil {
			return err
		}
		return renderStability(r)
	case "origin":
		d, err := loadOne("dblp")
		if err != nil {
			return err
		}
		r, err := eval.OriginSweep(d, []float64{0.35, 0.5, 0.65}, eval.Rho())
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "origin-"+d.Name, r); err != nil {
			return err
		}
		return renderOrigin(r)
	case "calib":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		for _, d := range ds {
			r, err := eval.Calibration(d)
			if err != nil {
				return err
			}
			if err := writeCSV(csvDir, "calib-"+d.Name, r); err != nil {
				return err
			}
			renderCalibration(r)
		}
		return nil
	case "fig6", "fig7":
		// Appendix heatmaps: Fig 6 = correlation, Fig 7 = nDCG@50, on
		// APS and hep-th.
		m := eval.Rho()
		if exp == "fig7" {
			m = eval.NDCGAt(50)
		}
		names := []string{"aps", "hep-th"}
		if dataset != "" {
			names = []string{dataset}
		}
		for _, name := range names {
			d, err := eval.LoadDataset(name, scale)
			if err != nil {
				return err
			}
			r, err := eval.Fig2(d, m)
			if err != nil {
				return err
			}
			if err := writeCSV(csvDir, exp+"-"+d.Name+"-"+m.Name, r); err != nil {
				return err
			}
			if err := renderFig2(r); err != nil {
				return err
			}
		}
		return nil
	case "best":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		for _, m := range []eval.Metric{eval.Rho(), eval.NDCGAt(50)} {
			r, err := eval.BestParams(ds, m)
			if err != nil {
				return err
			}
			renderBestParams(r, ds)
		}
		return nil
	case "coldstart":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		for _, d := range ds {
			r, err := eval.ColdStart(d, 3, eval.Rho())
			if err != nil {
				return err
			}
			if err := writeCSV(csvDir, "coldstart-"+d.Name, r); err != nil {
				return err
			}
			renderColdStart(r)
		}
		return nil
	case "ci":
		ds, err := loadAll()
		if err != nil {
			return err
		}
		fmt.Println("bootstrap 95% confidence intervals (Spearman ρ, default split)")
		var rows [][]string
		for _, d := range ds {
			r, err := eval.ConfidenceIntervals(d, 300)
			if err != nil {
				return err
			}
			sep := "overlap"
			if r.Separated {
				sep = "separated"
			}
			rows = append(rows, []string{
				d.Name,
				fmt.Sprintf("%.4f [%.4f, %.4f]", r.Point["AR"], r.Lo["AR"], r.Hi["AR"]),
				fmt.Sprintf("%.4f [%.4f, %.4f]", r.Point["ECM"], r.Lo["ECM"], r.Hi["ECM"]),
				sep,
			})
		}
		fmt.Print(textplot.Table([]string{"dataset", "AR", "ECM", "intervals"}, rows))
		return nil
	case "preq":
		d, err := loadOne("dblp")
		if err != nil {
			return err
		}
		last := d.Net.MaxYear() - 3
		r, err := eval.Prequential(d, last-7, last, 3)
		if err != nil {
			return err
		}
		if err := writeCSV(csvDir, "preq-"+d.Name, r); err != nil {
			return err
		}
		fmt.Printf("prequential evaluation on %s (3-year horizon)\n", r.Dataset)
		var rows [][]string
		for i, y := range r.Years {
			rows = append(rows, []string{
				fmt.Sprintf("%d", y),
				fmt.Sprintf("%.4f", r.Rho[i]),
				fmt.Sprintf("%.2f", r.Recall50[i]),
			})
		}
		fmt.Print(textplot.Table([]string{"tN", "ρ", "recall@50"}, rows))
		return nil
	case "trend":
		r, err := eval.TrendShift(scale, 100)
		if err != nil {
			return err
		}
		fmt.Printf("trend shift on %s: topic %d bursts ×6 from %d; tN = %d\n",
			r.Dataset, r.BurstTopic, r.BurstYear, r.TN)
		var rows [][]string
		for _, m := range []string{"truth", "AR", "NO-ATT", "CC"} {
			rows = append(rows, []string{m, fmt.Sprintf("%d", r.TopicInTopK[m])})
		}
		fmt.Print(textplot.Table([]string{"ranking", "burst papers in top-100"}, rows))
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func renderStability(r eval.StabilityResult) error {
	fmt.Printf("seed stability on %s (%s, %d seeds): AR wins outright on %d\n",
		r.Dataset, r.Metric, len(r.Seeds), r.ARWins)
	var rows [][]string
	for _, fam := range []string{"AR", "NO-ATT", "CR", "RAM", "ECM"} {
		mean, std := r.MeanStd(fam)
		rows = append(rows, []string{fam, fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", std)})
	}
	fmt.Print(textplot.Table([]string{"method", "mean", "std"}, rows))
	return nil
}

func renderCalibration(r eval.CalibrationResult) {
	fmt.Printf("\ncalibration on %s (%s): mean realized STI per score decile; top-decile lift ×%.1f\n",
		r.Dataset, r.Method, r.TopDecileLift())
	labels := make([]string, len(r.MeanSTI))
	counts := make([]int, len(r.MeanSTI))
	for d, v := range r.MeanSTI {
		labels[d] = fmt.Sprintf("D%d", d+1)
		counts[d] = int(v*100 + 0.5) // centi-citations, for bar widths
	}
	fmt.Print(textplot.Histogram("mean STI ×100 per decile (D1 = top 10% by AttRank)", labels, counts, 40))
}

func renderColdStart(r eval.ColdStartResult) {
	fmt.Printf("\ncold start on %s: ranking papers published in the last %d years (%d papers)\n",
		r.Dataset, r.RecentYears, r.RecentCount)
	var rows [][]string
	for _, m := range []string{"AR", "CC", "PR"} {
		rows = append(rows, []string{
			m,
			fmt.Sprintf("%.4f", r.All[m]),
			fmt.Sprintf("%.4f", r.Recent[m]),
		})
	}
	fmt.Print(textplot.Table([]string{"method", "ρ all papers", "ρ recent only"}, rows))
}

func renderBestParams(r eval.BestParamsResult, ds []eval.Dataset) {
	fmt.Printf("\n§4.2 — optimal AttRank parameterization per dataset (%s, ratio %.1f)\n",
		r.Metric, eval.DefaultRatio)
	var rows [][]string
	for _, d := range ds {
		rows = append(rows, []string{
			d.Name,
			r.FormatBest(d.Name),
			fmt.Sprintf("%.4f", r.NoAtt[d.Name]),
			fmt.Sprintf("%.4f", r.AttOnly[d.Name]),
			fmt.Sprintf("%+.4f", r.AttentionGain(d.Name)),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"dataset", "best {α,β,γ,y}", "NO-ATT max", "ATT-ONLY max", "gain"},
		rows,
	))
}

func renderOrigin(r eval.OriginResult) error {
	fmt.Printf("split-origin sweep on %s (%s)\n", r.Dataset, r.Metric)
	header := []string{"origin"}
	fams := []string{"AR", "NO-ATT", "CR", "RAM", "ECM"}
	header = append(header, fams...)
	var rows [][]string
	for i, o := range r.Origins {
		row := []string{fmt.Sprintf("%.2f", o)}
		for _, f := range fams {
			row = append(row, fmt.Sprintf("%.4f", r.Values[f][i]))
		}
		rows = append(rows, row)
	}
	fmt.Print(textplot.Table(header, rows))
	return nil
}

func renderFig1a(r eval.Fig1aResult, ds []eval.Dataset) error {
	xs := make([]float64, r.MaxAge+1)
	for i := range xs {
		xs[i] = float64(i)
	}
	series := make(map[string][]float64)
	for _, d := range ds {
		pct := make([]float64, len(r.Series[d.Name]))
		for i, v := range r.Series[d.Name] {
			pct[i] = v * 100
		}
		series[d.Name] = pct
	}
	fmt.Print(textplot.LineChart("Figure 1a — % of citations received n years after publication", xs, series, 14))
	return nil
}

func renderFig1b(r eval.Fig1bResult, d eval.Dataset) error {
	xs := make([]float64, len(r.Years))
	for i, y := range r.Years {
		xs[i] = float64(y)
	}
	old := make([]float64, len(r.OldCounts))
	newer := make([]float64, len(r.NewCounts))
	for i := range r.OldCounts {
		old[i] = float64(r.OldCounts[i])
		newer[i] = float64(r.NewCounts[i])
	}
	title := fmt.Sprintf("Figure 1b (%s) — yearly citations: %s (%d) vs %s (%d); overtake at %d",
		d.Name, r.OldID, r.OldYear, r.NewID, r.NewYear, r.CrossYear)
	fmt.Print(textplot.LineChart(title, xs, map[string][]float64{
		"old-" + r.OldID: old,
		"new-" + r.NewID: newer,
	}, 12))
	return nil
}

func renderTable1(r eval.Table1Result, ds []eval.Dataset) error {
	row := []string{"Recently Popular"}
	header := []string{"Dataset"}
	for _, d := range ds {
		header = append(header, d.Name)
		row = append(row, fmt.Sprintf("%d", r.Counts[d.Name]))
	}
	fmt.Printf("Table 1 — recently popular papers in top-%d by STI (window %dy)\n", r.K, r.Window)
	fmt.Print(textplot.Table(header, [][]string{row}))
	return nil
}

func renderTable2(r eval.Table2Result, ds []eval.Dataset) error {
	header := []string{"Test Ratio"}
	for _, d := range ds {
		header = append(header, d.Name)
	}
	var rows [][]string
	for i, ratio := range r.Ratios {
		row := []string{fmt.Sprintf("%.1f", ratio)}
		for _, d := range ds {
			row = append(row, fmt.Sprintf("%d", r.Tau[d.Name][i]))
		}
		rows = append(rows, row)
	}
	fmt.Println("Table 2 — correspondence of test ratio to time horizon τ (years)")
	fmt.Print(textplot.Table(header, rows))
	return nil
}

func renderFig2(r eval.HeatmapResult) error {
	fmt.Printf("Figure 2 — AttRank %s over the α–β grid, dataset %s\n", r.Metric, r.Dataset)
	colLabels := make([]string, len(r.Alphas))
	for i, a := range r.Alphas {
		colLabels[i] = fmt.Sprintf("%.1f", a)
	}
	rowLabels := make([]string, len(r.Betas))
	for i, b := range r.Betas {
		rowLabels[i] = fmt.Sprintf("β=%.1f", b)
	}
	for yi := len(r.Ys) - 1; yi >= 0; yi-- {
		// Print β descending like the paper's heatmaps (high β on top).
		flipped := make([][]float64, len(r.Betas))
		flippedLabels := make([]string, len(r.Betas))
		for bi := range r.Betas {
			flipped[bi] = r.Values[yi][len(r.Betas)-1-bi]
			flippedLabels[bi] = rowLabels[len(r.Betas)-1-bi]
		}
		fmt.Print(textplot.Heatmap(
			fmt.Sprintf("y=%d (α across)", r.Ys[yi]),
			flippedLabels, colLabels, flipped,
		))
	}
	fmt.Printf("best: %.4f at α=%.1f β=%.1f γ=%.1f y=%d\n",
		r.Best.Value, r.Best.Params.Alpha, r.Best.Params.Beta, r.Best.Params.Gamma, r.Best.Params.AttentionYears)
	return nil
}

func renderSeries(r eval.SeriesResult, xName string) {
	fmt.Printf("\n%s on %s (x-axis: %s)\n", strings.ToUpper(r.Metric), r.Dataset, xName)
	fmt.Print(textplot.LineChart("", r.X, r.Series, 14))
	header := []string{xName}
	fams := r.SortedFamilies()
	header = append(header, fams...)
	var rows [][]string
	for i, x := range r.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, f := range fams {
			v := r.Series[f][i]
			if math.IsNaN(v) {
				row = append(row, "—")
			} else {
				row = append(row, fmt.Sprintf("%.4f", v))
			}
		}
		rows = append(rows, row)
	}
	fmt.Print(textplot.Table(header, rows))
}

func renderConvergence(r eval.ConvergenceResult, ds []eval.Dataset) error {
	header := []string{"Method"}
	for _, d := range ds {
		header = append(header, d.Name)
	}
	var rows [][]string
	for _, m := range []string{"AR", "CR", "FR"} {
		row := []string{m}
		for _, d := range ds {
			row = append(row, fmt.Sprintf("%d", r.Iterations[d.Name][m]))
		}
		rows = append(rows, row)
	}
	fmt.Println("§4.4 — iterations to convergence at α=0.5, ε=1e-12")
	fmt.Print(textplot.Table(header, rows))
	return nil
}

func renderWFit(r eval.WFitResult, ds []eval.Dataset) error {
	var rows [][]string
	for _, d := range ds {
		rows = append(rows, []string{d.Name, fmt.Sprintf("%.4f", r.W[d.Name])})
	}
	fmt.Println("§4.2 — fitted recency exponent w per dataset")
	fmt.Print(textplot.Table([]string{"dataset", "w"}, rows))
	return nil
}
