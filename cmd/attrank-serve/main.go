// Command attrank-serve exposes a ranked citation corpus over HTTP (see
// internal/service for the endpoint list).
//
// Usage:
//
//	attrank-serve -in network.tsv [-addr :8080] [-alpha 0.2 -beta 0.5 -gamma 0.3 -y 3] [-w 0]
//
// Example session:
//
//	attrank-serve -in dblp.tsv &
//	curl localhost:8080/v1/top?n=5
//	curl localhost:8080/v1/paper/p42
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"attrank/internal/core"
	"attrank/internal/dataio"
	"attrank/internal/service"
)

func main() {
	var (
		in    = flag.String("in", "", "input network file (.tsv, .json or .anb)")
		addr  = flag.String("addr", ":8080", "listen address")
		alpha = flag.Float64("alpha", 0.2, "AttRank α")
		beta  = flag.Float64("beta", 0.5, "AttRank β")
		gamma = flag.Float64("gamma", 0.3, "AttRank γ")
		y     = flag.Int("y", 3, "attention window in years")
		w     = flag.Float64("w", 0, "recency exponent (0 = fit from data)")
		now   = flag.Int("now", 0, "current time tN (default: newest year)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "attrank-serve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := build(*in, *alpha, *beta, *gamma, *y, *w, *now)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrank-serve:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("attrank-serve: listening on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Println("attrank-serve: shut down cleanly")
}

func build(in string, alpha, beta, gamma float64, y int, w float64, now int) (*service.Server, error) {
	net, err := dataio.LoadFile(in)
	if err != nil {
		return nil, err
	}
	if now == 0 {
		now = net.MaxYear()
	}
	if w == 0 {
		fitted, err := core.FitWFromNetwork(net, 10)
		if err != nil {
			return nil, fmt.Errorf("fitting w: %w", err)
		}
		w = fitted
		log.Printf("attrank-serve: fitted w = %.4f", w)
	}
	return service.New(net, now, core.Params{
		Alpha: alpha, Beta: beta, Gamma: gamma, AttentionYears: y, W: w,
	})
}
