// Command attrank-serve exposes a ranked citation corpus over HTTP (see
// internal/service for the endpoint list).
//
// Usage:
//
//	attrank-serve -in network.tsv [-addr :8080] [-alpha 0.2 -beta 0.5 -gamma 0.3 -y 3] [-w 0] [-pprof]
//	attrank-serve -wal state/ [-in seed.tsv] [-rerank-after 256] [-rerank-every 2s] [-snapshot-every 4096]
//	attrank-serve ... [-deadline 2s] [-max-inflight 0] [-queue 0] [-max-pending 4096]
//	attrank-serve ... [-indicators [-impulse-window 3]]
//
// -indicators additionally serves the multi-indicator impact layer (see
// internal/impact and DESIGN.md §15) at GET /v1/impact/{id} and POST
// /v1/impact/batch: per-paper AttRank popularity, PageRank influence,
// windowed-citation impulse and total citation count, each with a
// percentile impact class (C1–C5). In live mode the indicators are
// recomputed at every full epoch; a leader ships the configuration to
// its followers, which reproduce the classes bit-for-bit.
//
// Every server runs behind the overload-protection layer (see
// internal/service and DESIGN.md §10): at most -max-inflight requests
// execute concurrently (0 = 4 per core), up to -queue more wait in a
// FIFO queue (0 = same as -max-inflight), excess load is shed with
// 503 + Retry-After, writes are shed with 429 while more than
// -max-pending mutations await compaction (negative disables), and every
// admitted request carries a -deadline context deadline. /healthz,
// /readyz and /metrics bypass admission so probes keep answering under
// overload.
//
// Every server exposes Prometheus metrics at GET /metrics; -pprof
// additionally mounts the net/http/pprof profiling handlers under
// /debug/pprof/ (off by default — they expose stacks and heap data).
//
// Replication (-role, see internal/replication and DESIGN.md §12):
//
//	attrank-serve -role leader -wal state/ -in seed.tsv
//	attrank-serve -role follower -peers http://leader:8080 -wal follower-state/ [-max-lag 8]
//
// A leader is a live server that additionally ships its write-ahead log
// to followers over /repl/. A follower bootstraps its corpus and scores
// from the leader, replays the shipped log through its own re-rank loop
// (publishing rankings bit-identical to the leader's), serves every read
// endpoint locally, and sheds reads with 503 + Retry-After once it falls
// more than -max-lag epochs behind. Writes to a follower answer 503
// pointing at the leader. -max-rps additionally caps the admitted
// request rate per replica (0 = uncapped).
//
// Sharded ranking (-role shard / -shard-peers, see internal/shard and
// DESIGN.md §16):
//
//	attrank-serve -role shard -addr :9001 [-shard-id 1]
//	attrank-serve -in dblp.tsv -shard-peers http://h1:9001,http://h2:9001
//
// A shard worker owns no corpus of its own: it waits for a coordinator
// to ship it a row block of the compiled ranking matrix over /shard/
// and then serves per-iteration block steps. A ranking server given
// -shard-peers partitions every (re-)rank across those workers —
// boundary scores are exchanged each iteration and the published
// scores are bit-identical to the local kernel at the same partition
// count. If any worker fails mid-rank the epoch transparently falls
// back to the local kernel, so shards add capacity, never risk.
//
// Without -wal the server is read-only: it ranks the corpus once at
// startup and serves it. With -wal it runs the live-ingestion subsystem
// (internal/ingest): mutations posted to /v1/papers, /v1/citations and
// /v1/batch are made durable in a write-ahead log under the given
// directory, compacted into the corpus in the background, and re-ranked
// on a debounce schedule. On restart the corpus is recovered from the
// snapshot plus the WAL tail; -in then only seeds a fresh, empty
// directory.
//
// Example read-only session:
//
//	attrank-serve -in dblp.tsv &
//	curl localhost:8080/v1/top?n=5
//	curl localhost:8080/v1/paper/p42
//
// Example live session:
//
//	attrank-serve -wal state/ -in dblp.tsv &
//	curl -X POST localhost:8080/v1/papers -d '{"id":"p-new","year":2021,"authors":["ada"]}'
//	curl -X POST localhost:8080/v1/citations -d '{"citing":"p-new","cited":"p42"}'
//	curl localhost:8080/v1/epoch
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"attrank/internal/core"
	"attrank/internal/dataio"
	"attrank/internal/graph"
	"attrank/internal/impact"
	"attrank/internal/ingest"
	"attrank/internal/replication"
	"attrank/internal/service"
	"attrank/internal/shard"
)

func main() {
	var (
		in      = flag.String("in", "", "input network file (.tsv, .json or .anb)")
		addr    = flag.String("addr", ":8080", "listen address")
		alpha   = flag.Float64("alpha", 0.2, "AttRank α")
		beta    = flag.Float64("beta", 0.5, "AttRank β")
		gamma   = flag.Float64("gamma", 0.3, "AttRank γ")
		y       = flag.Int("y", 3, "attention window in years")
		w       = flag.Float64("w", 0, "recency exponent (0 = fit from data)")
		now     = flag.Int("now", 0, "current time tN (default: newest year)")
		workers = flag.Int("workers", -1, "power-iteration partitions per (re-)rank: negative = one per CPU core (default — a server should rank as fast as the machine allows), N > 0 = exactly N, 0 = the serial reference kernel; scores are bit-identical either way")

		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")

		deadline    = flag.Duration("deadline", 2*time.Second, "per-request deadline propagated to handlers")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 4 per core)")
		queue       = flag.Int("queue", 0, "admission FIFO queue length before shedding (0 = same as -max-inflight)")
		maxPending  = flag.Int("max-pending", service.DefaultMaxPending, "shed writes while this many mutations await compaction (negative disables)")

		wal           = flag.String("wal", "", "live mode: durable state directory (WAL + snapshots)")
		rerankAfter   = flag.Int("rerank-after", ingest.DefaultRerankAfter, "live mode: re-rank after this many pending mutations")
		rerankEvery   = flag.Duration("rerank-every", ingest.DefaultRerankEvery, "live mode: re-rank at most this long after a mutation")
		snapshotEvery = flag.Int("snapshot-every", ingest.DefaultSnapshotEvery, "live mode: snapshot after this many compacted mutations (negative disables)")
		pushTol       = flag.Float64("push-tol", 0, "live mode: enable incremental (push) re-ranks settled to this residual L1 tolerance, e.g. 1e-6 (0 disables: every epoch is a full re-rank)")
		pushReconcile = flag.Int("push-reconcile", ingest.DefaultReconcileEvery, "live mode: force a full reconciling re-rank after this many consecutive push epochs (negative disables the cadence cap)")

		indicators    = flag.Bool("indicators", false, "serve the multi-indicator impact layer at /v1/impact/ (AttRank popularity, PageRank influence, windowed impulse, citation count, each with C1–C5 classes)")
		impulseWindow = flag.Int("impulse-window", impact.DefaultImpulseWindow, "impulse indicator: count citations from the most recent N years")

		role   = flag.String("role", "", "replication role: empty (standalone), \"leader\" (requires -wal), \"follower\" (requires -peers and -wal as the local state directory) or \"shard\" (a ranking shard worker: serves /shard/, holds no corpus)")
		peers  = flag.String("peers", "", "follower mode: the leader's base URL, e.g. http://leader:8080")
		maxLag = flag.Int("max-lag", service.DefaultMaxLag, "follower mode: shed reads when more than this many epochs behind the leader")
		maxRPS = flag.Float64("max-rps", 0, "cap admitted requests per second (0 = uncapped); excess sheds with 429")

		shardID    = flag.Int("shard-id", 0, "shard role: this worker's rank, used only as a log label (the coordinator assigns blocks by peer-list order)")
		shardPeers = flag.String("shard-peers", "", "partition every (re-)rank across these shard workers (comma-separated base URLs, e.g. http://h1:9001,http://h2:9001); scores stay bit-identical to the local kernel at the same partition count")
	)
	flag.Parse()
	if *role != "" && *role != "leader" && *role != "follower" && *role != "shard" {
		fmt.Fprintln(os.Stderr, "attrank-serve: -role must be empty, \"leader\", \"follower\" or \"shard\"")
		os.Exit(2)
	}
	if *shardPeers != "" && (*role == "follower" || *role == "shard") {
		// A follower reproduces the leader's rank bit-for-bit from shipped
		// scores and never ranks on its own; a shard worker is itself the
		// far end of the exchange.
		fmt.Fprintln(os.Stderr, "attrank-serve: -shard-peers cannot be combined with -role", *role)
		os.Exit(2)
	}
	if *role == "shard" {
		serveShard(*addr, *shardID)
		return
	}
	if *role == "follower" {
		if *peers == "" || *wal == "" {
			fmt.Fprintln(os.Stderr, "attrank-serve: -role follower requires -peers (leader URL) and -wal (local state directory)")
			os.Exit(2)
		}
	} else if *in == "" && *wal == "" {
		fmt.Fprintln(os.Stderr, "attrank-serve: -in or -wal is required")
		flag.Usage()
		os.Exit(2)
	}
	if *role == "leader" && *wal == "" {
		fmt.Fprintln(os.Stderr, "attrank-serve: -role leader requires -wal (followers ship the write-ahead log)")
		os.Exit(2)
	}
	if *shardPeers != "" {
		list := strings.Split(*shardPeers, ",")
		core.SetShardProvider(shard.Provider(nil, list, log.Printf))
		log.Printf("attrank-serve: sharding ranks across %d workers: %s", len(list), *shardPeers)
	}
	impactCfg := impact.Config{
		Enabled:       *indicators,
		ImpulseWindow: *impulseWindow,
		Workers:       *workers,
	}
	var (
		srv *service.Server
		ing *ingest.Ingester
		err error
	)
	switch {
	case *role == "follower":
		if *indicators {
			// A follower reproduces the leader's epochs bit-for-bit, so the
			// indicator configuration ships in the replication state header
			// rather than being set locally.
			log.Printf("attrank-serve: -indicators is inherited from the leader in follower mode")
		}
		// Only an explicit -workers overrides the leader's partition
		// count (overriding voids the bit-equality guarantee).
		followerWorkers := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				followerWorkers = *workers
			}
		})
		var fol *replication.Follower
		fol, err = replication.StartFollower(replication.FollowerConfig{
			Leader:  *peers,
			Dir:     *wal,
			Workers: followerWorkers,
			Logf:    log.Printf,
		})
		if err == nil {
			defer func() {
				if err := fol.Close(); err != nil {
					log.Printf("attrank-serve: closing follower: %v", err)
				}
			}()
			srv = service.NewReplica(fol, *maxLag)
		}
	case *wal != "":
		ing, err = buildLive(*in, *wal, *alpha, *beta, *gamma, *y, *w, *now, *workers, *rerankAfter, *rerankEvery, *snapshotEvery, *pushTol, *pushReconcile, impactCfg)
		if err == nil {
			defer func() {
				if err := ing.Close(); err != nil {
					log.Printf("attrank-serve: closing ingester: %v", err)
				}
			}()
			srv = service.NewLive(ing)
			if *role == "leader" {
				srv.AttachReplication(replication.NewLeader(ing, replication.LeaderConfig{Logf: log.Printf}).Handler())
				log.Printf("attrank-serve: leader mode: shipping WAL at /repl/")
			}
		}
	default:
		srv, err = build(*in, *alpha, *beta, *gamma, *y, *w, *now, *workers)
		if err == nil && *indicators {
			err = srv.EnableIndicators(impactCfg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrank-serve:", err)
		os.Exit(1)
	}
	adm := service.AdmissionConfig{
		MaxInFlight: *maxInflight,
		MaxQueue:    *queue,
		Deadline:    *deadline,
		MaxPending:  *maxPending,
		MaxRPS:      *maxRPS,
	}
	srv.ConfigureAdmission(adm)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	handler := http.Handler(srv.Handler())
	if *pprofOn {
		handler = withPprof(handler)
		log.Printf("attrank-serve: pprof enabled at /debug/pprof/")
	}
	// The write timeout must outlast the worst admitted request: queue
	// wait plus deadline, with slack for the response itself.
	opts := service.ServeOptions{WriteTimeout: 2**deadline + 30*time.Second}
	log.Printf("attrank-serve: listening on %s", *addr)
	if err := service.ServeWith(ctx, *addr, handler, opts); err != nil {
		log.Fatal(err)
	}
	// Graceful shutdown order: the drain above already completed every
	// in-flight request; now make the corpus durable in one piece so the
	// next start recovers from a snapshot instead of a long WAL replay.
	if ing != nil {
		if err := ing.Flush(); err != nil {
			log.Printf("attrank-serve: final flush: %v", err)
		} else if err := ing.Snapshot(); err != nil {
			log.Printf("attrank-serve: final snapshot: %v", err)
		}
	}
	log.Println("attrank-serve: shut down cleanly")
}

// serveShard runs a ranking shard worker: an HTTP server whose whole
// surface is /shard/ (status, block load, rank chains, block steps).
// It holds no corpus and needs no flags beyond the listen address — a
// coordinator ships it everything, and a restarted worker is simply
// reshipped its block on the coordinator's next resume pass.
func serveShard(addr string, id int) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	wk := shard.NewWorker(log.Printf)
	// Block loads stream megabytes and a rank chain holds its connection
	// across many steps: give both directions generous bounds instead of
	// the query-serving defaults.
	opts := service.ServeOptions{
		ReadTimeout:  2 * time.Minute,
		WriteTimeout: 2 * time.Minute,
	}
	log.Printf("attrank-serve: shard worker %d listening on %s", id, addr)
	if err := service.ServeWith(ctx, addr, wk, opts); err != nil {
		log.Fatal(err)
	}
	log.Println("attrank-serve: shard worker shut down cleanly")
}

// withPprof mounts the net/http/pprof handlers in front of the service
// handler. Profiling is opt-in (-pprof): the endpoints expose stacks and
// heap contents, which a public ranking API should not serve by default.
func withPprof(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", next)
	return mux
}

func build(in string, alpha, beta, gamma float64, y int, w float64, now, workers int) (*service.Server, error) {
	net, err := dataio.LoadFile(in)
	if err != nil {
		return nil, err
	}
	if now == 0 {
		now = net.MaxYear()
	}
	if w == 0 {
		if w, err = fitW(net); err != nil {
			return nil, err
		}
	}
	return service.New(net, now, core.Params{
		Alpha: alpha, Beta: beta, Gamma: gamma, AttentionYears: y, W: w, Workers: workers,
	})
}

// buildLive opens the ingestion subsystem over the durable state in dir.
// The seed corpus (-in) is only consulted when dir holds no snapshot yet;
// on restart the snapshot plus the WAL tail are authoritative.
func buildLive(in, dir string, alpha, beta, gamma float64, y int, w float64, now, workers, rerankAfter int, rerankEvery time.Duration, snapshotEvery int, pushTol float64, pushReconcile int, impactCfg impact.Config) (*ingest.Ingester, error) {
	var seed *graph.Network
	if in != "" {
		var err error
		if seed, err = dataio.LoadFile(in); err != nil {
			return nil, err
		}
	}
	if w == 0 {
		// Fit the recency exponent from whatever corpus we will start
		// from: the existing snapshot if the directory has one, else the
		// seed. An empty corpus keeps w = 0 (uniform recency) until the
		// operator restarts with an explicit -w.
		fitNet := seed
		if snap, err := dataio.LoadBinaryFile(filepath.Join(dir, "snapshot.anb")); err == nil {
			fitNet = snap
		}
		if fitNet != nil && fitNet.N() > 0 {
			var err error
			if w, err = fitW(fitNet); err != nil {
				return nil, err
			}
		} else {
			log.Printf("attrank-serve: empty corpus, using w = 0 (uniform recency)")
		}
	}
	return ingest.Open(seed, ingest.Config{
		Dir: dir,
		Params: core.Params{
			Alpha: alpha, Beta: beta, Gamma: gamma, AttentionYears: y, W: w, Workers: workers,
		},
		Now:            now,
		RerankAfter:    rerankAfter,
		RerankEvery:    rerankEvery,
		SnapshotEvery:  snapshotEvery,
		PushTol:        pushTol,
		ReconcileEvery: pushReconcile,
		Impact:         impactCfg,
		Logf:           log.Printf,
	})
}

func fitW(net *graph.Network) (float64, error) {
	w, err := core.FitWFromNetwork(net, 10)
	if err != nil {
		return 0, fmt.Errorf("fitting w: %w", err)
	}
	log.Printf("attrank-serve: fitted w = %.4f", w)
	return w, nil
}
