package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"attrank/internal/dataio"
	"attrank/internal/synth"
)

func TestBuildAndServe(t *testing.T) {
	p := synth.HepTh()
	p.Papers = 300
	p.AuthorPool = 100
	net, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteTSV(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := build(path, 0.2, 0.5, 0.3, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/top?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBuildMissingFile(t *testing.T) {
	if _, err := build(filepath.Join(t.TempDir(), "nope.tsv"), 0.2, 0.5, 0.3, 3, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildInvalidParams(t *testing.T) {
	p := synth.HepTh()
	p.Papers = 100
	p.AuthorPool = 50
	net, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteTSV(f, net); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := build(path, 0.9, 0.9, 0.9, 3, -0.2, 0); err == nil {
		t.Error("invalid params accepted")
	}
}
