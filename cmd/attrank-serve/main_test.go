package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"strings"
	"time"

	"attrank/internal/dataio"
	"attrank/internal/impact"
	"attrank/internal/ingest"
	"attrank/internal/service"
	"attrank/internal/synth"
)

func TestBuildAndServe(t *testing.T) {
	p := synth.HepTh()
	p.Papers = 300
	p.AuthorPool = 100
	net, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteTSV(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := build(path, 0.2, 0.5, 0.3, 3, 0, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/top?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBuildMissingFile(t *testing.T) {
	if _, err := build(filepath.Join(t.TempDir(), "nope.tsv"), 0.2, 0.5, 0.3, 3, 0, 0, -1); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildInvalidParams(t *testing.T) {
	p := synth.HepTh()
	p.Papers = 100
	p.AuthorPool = 50
	net, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteTSV(f, net); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := build(path, 0.9, 0.9, 0.9, 3, -0.2, 0, -1); err == nil {
		t.Error("invalid params accepted")
	}
}

func writeSynthTSV(t *testing.T, papers int) string {
	t.Helper()
	p := synth.HepTh()
	p.Papers = papers
	p.AuthorPool = 60
	net, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteTSV(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBuildLiveAndServe drives the live-ingestion wiring: seed a fresh
// WAL directory from -in, post a mutation, and watch the epoch advance
// across a restart that must not re-read the seed.
func TestBuildLiveAndServe(t *testing.T) {
	seedPath := writeSynthTSV(t, 150)
	dir := t.TempDir()

	ing, err := buildLive(seedPath, dir, 0.2, 0.5, 0.3, 3, 0, 0, -1, 1<<20, time.Hour, ingest.DefaultSnapshotEvery, 0, 0,
		impact.Config{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.NewLive(ing)
	srv.SetLogf(nil)
	ts := httptest.NewServer(srv.Handler())

	resp, err := http.Post(ts.URL+"/v1/papers", "application/json",
		strings.NewReader(`{"id":"live-1","year":2003,"authors":["ada"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add paper: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/refresh", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/paper/live-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("paper after refresh: %d", resp.StatusCode)
	}
	// The -indicators wiring: the live epoch carries impact state.
	resp, err = http.Get(ts.URL + "/v1/impact/live-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("impact after refresh: %d", resp.StatusCode)
	}
	ts.Close()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory with NO seed: state must come back
	// from the snapshot + WAL.
	re, err := buildLive("", dir, 0.2, 0.5, 0.3, 3, 0, 0, -1, 1<<20, time.Hour, ingest.DefaultSnapshotEvery, 0, 0,
		impact.Config{Enabled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	r := re.Ranking()
	if r == nil || r.Net.N() != 151 {
		t.Fatalf("recovered corpus has %d papers, want 151", r.Net.N())
	}
}

func TestBuildLiveEmptyCorpus(t *testing.T) {
	ing, err := buildLive("", t.TempDir(), 0.2, 0.5, 0.3, 3, 0, 0, -1, 1<<20, time.Hour, -1, 0, 0, impact.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	if ing.Ranking() != nil {
		t.Error("empty corpus published a ranking")
	}
}

func TestBuildLiveBadSeed(t *testing.T) {
	if _, err := buildLive(filepath.Join(t.TempDir(), "nope.tsv"), t.TempDir(),
		0.2, 0.5, 0.3, 3, 0, 0, -1, 1<<20, time.Hour, -1, 0, 0, impact.Config{}); err == nil {
		t.Error("missing seed accepted")
	}
}
