// Command attrank-stats analyses a citation network file: summary
// statistics, connectivity, in-degree concentration, the citation-age
// distribution of Figure 1a, and the fitted recency exponent w.
//
// Usage:
//
//	attrank-stats -in network.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"attrank/internal/core"
	"attrank/internal/dataio"
	"attrank/internal/graph"
	"attrank/internal/textplot"
)

func main() {
	in := flag.String("in", "", "input network file (.tsv, .json or .anb)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "attrank-stats: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in); err != nil {
		fmt.Fprintln(os.Stderr, "attrank-stats:", err)
		os.Exit(1)
	}
}

func run(in string) error {
	net, err := dataio.LoadFile(in)
	if err != nil {
		return err
	}
	printSummary(net)
	printDegreeHistogram(net)
	printCitationAge(net)
	return nil
}

func printSummary(net *graph.Network) {
	s := net.ComputeStats()
	_, components := net.WeaklyConnectedComponents()
	rows := [][]string{
		{"papers", fmt.Sprintf("%d", s.Papers)},
		{"citations", fmt.Sprintf("%d", s.Edges)},
		{"authors", fmt.Sprintf("%d", s.Authors)},
		{"venues", fmt.Sprintf("%d", s.Venues)},
		{"years", fmt.Sprintf("%d–%d", s.MinYear, s.MaxYear)},
		{"mean references", fmt.Sprintf("%.2f", s.MeanOutDeg)},
		{"max citations", fmt.Sprintf("%d", s.MaxInDeg)},
		{"dangling papers", fmt.Sprintf("%d", s.Dangling)},
		{"uncited papers", fmt.Sprintf("%d", s.Uncited)},
		{"components", fmt.Sprintf("%d", components)},
		{"largest component", fmt.Sprintf("%d", net.LargestComponentSize())},
		{"in-degree Gini", fmt.Sprintf("%.3f", net.GiniInDegree())},
		{"longest chain", fmt.Sprintf("%d", net.LongestPathLength())},
	}
	fmt.Print(textplot.Table([]string{"property", "value"}, rows))
}

func printDegreeHistogram(net *graph.Network) {
	hist := net.InDegreeHistogram()
	// Bucket in powers of two: 0, 1, 2–3, 4–7, …
	type bucket struct {
		label string
		lo    int
	}
	buckets := []bucket{{"0", 0}, {"1", 1}}
	for lo := 2; lo <= 1<<20; lo *= 2 {
		buckets = append(buckets, bucket{fmt.Sprintf("%d–%d", lo, lo*2-1), lo})
	}
	counts := make([]int, len(buckets))
	degs := make([]int, 0, len(hist))
	for d := range hist {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	for _, d := range degs {
		idx := 0
		for i := len(buckets) - 1; i >= 0; i-- {
			if d >= buckets[i].lo {
				idx = i
				break
			}
		}
		counts[idx] += hist[d]
	}
	// Trim empty tail buckets.
	last := len(counts) - 1
	for last > 0 && counts[last] == 0 {
		last--
	}
	labels := make([]string, 0, last+1)
	for i := 0; i <= last; i++ {
		labels = append(labels, buckets[i].label)
	}
	fmt.Println()
	fmt.Print(textplot.Histogram("papers by citation count", labels, counts[:last+1], 40))
}

func printCitationAge(net *graph.Network) {
	dist := net.CitationAgeDistribution(10)
	labels := make([]string, len(dist))
	counts := make([]int, len(dist))
	for i, v := range dist {
		labels[i] = fmt.Sprintf("%dy", i)
		counts[i] = int(v * 1000) // per mille for the bar widths
	}
	fmt.Println()
	fmt.Print(textplot.Histogram("citation age distribution (‰ of citations per year since publication)", labels, counts, 40))
	if w, err := core.FitWFromNetwork(net, 10); err == nil {
		fmt.Printf("\nfitted recency exponent w = %.4f (Eq. 3 calibration)\n", w)
	}
}
