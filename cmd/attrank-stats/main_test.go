package main

import (
	"os"
	"path/filepath"
	"testing"

	"attrank/internal/dataio"
	"attrank/internal/synth"
)

func TestRunStats(t *testing.T) {
	p := synth.HepTh()
	p.Papers = 300
	p.AuthorPool = 100
	net, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataio.WriteTSV(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run(path); err != nil {
		t.Fatal(err)
	}
}

func TestRunStatsMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "absent.tsv")); err == nil {
		t.Error("missing file accepted")
	}
}
