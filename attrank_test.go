package attrank_test

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"attrank"
)

func buildPublicNet(t *testing.T) *attrank.Network {
	t.Helper()
	b := attrank.NewBuilder()
	papers := []struct {
		id   string
		year int
	}{
		{"old", 1990}, {"mid", 1994}, {"hot", 1996}, {"new1", 1999}, {"new2", 1999}, {"new3", 1998},
	}
	for _, p := range papers {
		if _, err := b.AddPaper(p.id, p.year, []string{"a-" + p.id}, "V"); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{
		{"mid", "old"}, {"hot", "old"}, {"hot", "mid"},
		{"new1", "hot"}, {"new2", "hot"}, {"new3", "hot"}, {"new3", "old"},
	} {
		b.AddEdge(e[0], e[1])
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPublicRankFlow(t *testing.T) {
	net := buildPublicNet(t)
	res, err := attrank.Rank(net, net.MaxYear(), attrank.RecommendedParams(-0.3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	sum := 0.0
	for _, v := range res.Scores {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %v", sum)
	}
	top := attrank.TopK(res.Scores, 1)
	hot, _ := net.Lookup("hot")
	if int32(top[0]) != hot {
		t.Errorf("top paper = %s, want hot", net.Paper(int32(top[0])).ID)
	}
}

func TestPublicSaveLoadRoundTrip(t *testing.T) {
	net := buildPublicNet(t)
	path := filepath.Join(t.TempDir(), "net.tsv")
	if err := attrank.SaveNetwork(path, net); err != nil {
		t.Fatal(err)
	}
	back, err := attrank.LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != net.N() || back.Edges() != net.Edges() {
		t.Errorf("round trip lost data: %d/%d vs %d/%d", back.N(), back.Edges(), net.N(), net.Edges())
	}
}

func TestPublicMetrics(t *testing.T) {
	rho, err := attrank.Spearman([]float64{1, 2, 3}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("ρ = %v", rho)
	}
	ndcg, err := attrank.NDCG([]float64{3, 2, 1}, []float64{3, 2, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ndcg-1) > 1e-12 {
		t.Errorf("nDCG = %v", ndcg)
	}
}

func TestPublicSplitAndGroundTruth(t *testing.T) {
	d, err := attrank.GenerateDataset("hep-th", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s, err := attrank.NewSplit(d.Net, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	truth := s.GroundTruth()
	if len(truth) != s.Current.N() {
		t.Error("ground truth misaligned")
	}
	res, err := attrank.Rank(s.Current, s.TN, attrank.RecommendedParams(d.W))
	if err != nil {
		t.Fatal(err)
	}
	rho, err := attrank.Spearman(res.Scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rho <= 0 {
		t.Errorf("AttRank should correlate positively with STI, got %v", rho)
	}
}

func TestPublicBaselinesImplementMethod(t *testing.T) {
	net := buildPublicNet(t)
	methods := []attrank.Method{
		attrank.PageRank{Alpha: 0.5},
		attrank.CitationCount{},
		attrank.CiteRank{Alpha: 0.5, TauDir: 2},
		attrank.FutureRank{Alpha: 0.3, Beta: 0.1, Gamma: 0.5, Rho: -0.62},
		attrank.RAM{Gamma: 0.6},
		attrank.ECM{Alpha: 0.2, Gamma: 0.3},
		attrank.WSDM{Alpha: 1.7, Beta: 3, Iters: 4},
	}
	for _, m := range methods {
		scores, err := m.Scores(net, net.MaxYear())
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(scores) != net.N() {
			t.Fatalf("%s: wrong score count", m.Name())
		}
	}
}

func TestPublicAttentionVector(t *testing.T) {
	net := buildPublicNet(t)
	att := attrank.AttentionVector(net, net.MaxYear(), 2)
	hot, _ := net.Lookup("hot")
	// hot received all 3 of the 4 window citations (1998–99): share 0.75.
	if math.Abs(att[hot]-0.75) > 1e-12 {
		t.Errorf("A(hot) = %v, want 0.75", att[hot])
	}
}

func TestPublicGenerateNetwork(t *testing.T) {
	profiles := attrank.DatasetProfiles()
	if len(profiles) != 4 {
		t.Fatalf("profiles = %d, want 4", len(profiles))
	}
	p := profiles[0]
	p.Papers = 300
	p.AuthorPool = 100
	net, err := attrank.GenerateNetwork(p)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 300 {
		t.Errorf("generated %d papers", net.N())
	}
	if _, err := attrank.FitW(net); err != nil {
		t.Errorf("FitW: %v", err)
	}
}

func TestPublicTracker(t *testing.T) {
	net := buildPublicNet(t)
	tr, err := attrank.NewTracker(attrank.RecommendedParams(-0.3))
	if err != nil {
		t.Fatal(err)
	}
	first, err := tr.Update(net, net.MaxYear())
	if err != nil {
		t.Fatal(err)
	}
	second, err := tr.Update(net, net.MaxYear())
	if err != nil {
		t.Fatal(err)
	}
	if second.Iterations > first.Iterations {
		t.Errorf("warm update took %d iterations, first took %d", second.Iterations, first.Iterations)
	}
}

func TestPublicAuthorAndVenueScores(t *testing.T) {
	net := buildPublicNet(t)
	res, err := attrank.Rank(net, net.MaxYear(), attrank.RecommendedParams(-0.3))
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []attrank.Aggregation{attrank.AggSum, attrank.AggMean, attrank.AggFractional} {
		as, err := attrank.AuthorScores(net, res.Scores, agg)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		if len(as) != net.NumAuthors() {
			t.Fatalf("%v: %d author scores", agg, len(as))
		}
	}
	vs, err := attrank.VenueScores(net, res.Scores, attrank.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != net.NumVenues() {
		t.Fatalf("%d venue scores", len(vs))
	}
}

func TestPublicExplain(t *testing.T) {
	net := buildPublicNet(t)
	p := attrank.RecommendedParams(-0.3)
	res, err := attrank.Rank(net, net.MaxYear(), p)
	if err != nil {
		t.Fatal(err)
	}
	hot, _ := net.Lookup("hot")
	e, err := attrank.Explain(net, res, p, hot)
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Flow + e.Attention + e.Recency
	if math.Abs(sum-e.Score) > 1e-9 {
		t.Errorf("decomposition %v != score %v", sum, e.Score)
	}
}

func TestPublicExtraMetrics(t *testing.T) {
	tau, err := attrank.KendallTau([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || math.Abs(tau-1) > 1e-12 {
		t.Errorf("KendallTau = %v, %v", tau, err)
	}
	p, err := attrank.PrecisionAtK([]float64{3, 2, 1}, []float64{30, 20, 10}, 2)
	if err != nil || p != 1 {
		t.Errorf("PrecisionAtK = %v, %v", p, err)
	}
	mrr, err := attrank.MRR([]float64{3, 2, 1}, []float64{30, 20, 10}, 1)
	if err != nil || mrr != 1 {
		t.Errorf("MRR = %v, %v", mrr, err)
	}
}

func TestPublicNewServer(t *testing.T) {
	net := buildPublicNet(t)
	srv, err := attrank.NewServer(net, net.MaxYear(), attrank.RecommendedParams(-0.3))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/top?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	var papers []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&papers); err != nil {
		t.Fatal(err)
	}
	if len(papers) != 2 || papers[0]["id"] != "hot" {
		t.Errorf("top = %v", papers)
	}
}
