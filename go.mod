module attrank

go 1.22
