// Package attrank is the public API of this repository: an implementation
// of AttRank (Kanellos et al., "Ranking Papers by their Short-Term
// Scientific Impact", ICDE 2021) together with the citation-network
// substrate, the competitor methods it is evaluated against, the ranking
// metrics, the temporal evaluation protocol, and calibrated synthetic
// dataset generators.
//
// # Quick start
//
//	net, err := attrank.LoadNetwork("citations.tsv")
//	w, err := attrank.FitW(net)                        // calibrate recency decay
//	res, err := attrank.Rank(net, net.MaxYear(), attrank.RecommendedParams(w))
//	top := attrank.TopK(res.Scores, 10)                // most-promising papers
//
// See the examples directory for complete programs.
package attrank

import (
	"attrank/internal/authors"
	"attrank/internal/baselines"
	"attrank/internal/core"
	"attrank/internal/dataio"
	"attrank/internal/eval"
	"attrank/internal/graph"
	"attrank/internal/metrics"
	"attrank/internal/rank"
	"attrank/internal/service"
	"attrank/internal/synth"
)

// Core graph types.
type (
	// Network is an immutable citation network; build one with NewBuilder
	// or load one with LoadNetwork.
	Network = graph.Network
	// Builder assembles a Network from papers and citation edges.
	Builder = graph.Builder
	// Paper is the metadata of a single publication.
	Paper = graph.Paper
	// Stats summarizes a network.
	Stats = graph.Stats
)

// NoVenue marks a paper without venue metadata.
const NoVenue = graph.NoVenue

// AttRank types.
type (
	// Params configures AttRank (α, β, γ, attention window y, recency
	// exponent w, iteration controls).
	Params = core.Params
	// Result carries converged AttRank scores plus diagnostics.
	Result = core.Result
)

// Ranking methods.
type (
	// Method is the interface implemented by every ranking method here.
	Method = rank.Method
	// PageRank is the classic damped random-walk baseline.
	PageRank = baselines.PageRank
	// CitationCount ranks by in-degree.
	CitationCount = baselines.CitationCount
	// CiteRank is the network-traffic model of Walker et al. (2007).
	CiteRank = baselines.CiteRank
	// FutureRank is the PageRank+HITS+time model of Sayyadi & Getoor (2009).
	FutureRank = baselines.FutureRank
	// RAM is the retained adjacency matrix method of Ghosh et al. (2011).
	RAM = baselines.RAM
	// ECM is the effective contagion matrix method of Ghosh et al. (2011).
	ECM = baselines.ECM
	// WSDM is the WSDM Cup 2016 winning heuristic of Feng et al.
	WSDM = baselines.WSDM
	// HITS is Kleinberg's hubs-and-authorities (authority scores).
	HITS = baselines.HITS
	// Katz is plain Katz centrality (ECM without citation aging).
	Katz = baselines.Katz
	// TimeAwarePageRank weights citation edges by the publication gap.
	TimeAwarePageRank = baselines.TimeAwarePageRank
)

// Tracker maintains AttRank scores over a growing corpus, warm-starting
// each re-rank from the previous scores.
type Tracker = core.Tracker

// NewTracker returns a Tracker with the given AttRank parameters.
func NewTracker(p Params) (*Tracker, error) { return core.NewTracker(p) }

// Aggregation selects how paper scores are attributed to authors/venues.
type Aggregation = authors.Aggregation

// Aggregation modes for AuthorScores and VenueScores.
const (
	AggSum        = authors.Sum
	AggMean       = authors.Mean
	AggFractional = authors.Fractional
)

// AuthorScores aggregates paper scores into author-level impact scores.
func AuthorScores(net *Network, paperScores []float64, agg Aggregation) ([]float64, error) {
	return authors.AuthorScores(net, paperScores, agg)
}

// VenueScores aggregates paper scores into venue-level impact scores.
func VenueScores(net *Network, paperScores []float64, agg Aggregation) ([]float64, error) {
	return authors.VenueScores(net, paperScores, agg)
}

// Evaluation protocol types.
type (
	// Split is a temporal current/future partition (§4.1 of the paper).
	Split = eval.Split
	// Dataset bundles a synthetic network with its fitted w.
	Dataset = eval.Dataset
)

// Profile describes a synthetic dataset generator configuration.
type Profile = synth.Profile

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// LoadNetwork reads a citation network from a TSV or JSON file (see
// package dataio for the formats).
func LoadNetwork(path string) (*Network, error) { return dataio.LoadFile(path) }

// SaveNetwork writes a citation network to a TSV or JSON file.
func SaveNetwork(path string, net *Network) error { return dataio.SaveFile(path, net) }

// Rank computes AttRank scores for the network's state at time now.
// Repeated ranks of the same *Network reuse a compiled ranking operator
// (normalized matrix, CSR mirror, worker pool) behind the scenes; see
// Operator to manage one explicitly.
func Rank(net *Network, now int, p Params) (*Result, error) { return core.Rank(net, now, p) }

// Operator is the compiled form of AttRank over one immutable network:
// matrix state is built once and reused across ranks. Obtain one with
// CompileOperator for long-lived, explicitly managed reuse (a server, a
// sweep); plain Rank manages a small operator cache automatically.
type Operator = core.Operator

// CompileOperator returns a ranking operator for the network. The heavy
// state (normalized matrix, CSR mirror, worker pool) is built lazily on
// first use, so compiling is cheap.
func CompileOperator(net *Network) *Operator { return core.Compile(net) }

// RecommendedParams returns a strong general-purpose AttRank setting:
// α=0.2, β=0.5, γ=0.3, y=3, near the optima the paper reports across its
// four datasets. w must be the dataset's fitted recency exponent (≤ 0);
// use FitW to calibrate it.
func RecommendedParams(w float64) Params {
	return Params{Alpha: 0.2, Beta: 0.5, Gamma: 0.3, AttentionYears: 3, W: w}
}

// FitW calibrates the recency exponent of Eq. 3 from the network's
// citation-age distribution, as in §4.2 of the paper.
func FitW(net *Network) (float64, error) { return core.FitWFromNetwork(net, 10) }

// AttentionVector exposes the attention mechanism A of Eq. 2: each
// paper's share of the citations made in the last y years.
func AttentionVector(net *Network, now, y int) []float64 {
	return core.AttentionVector(net, now, y)
}

// Spearman returns the rank correlation of two score vectors (tie-aware).
func Spearman(a, b []float64) (float64, error) { return metrics.Spearman(a, b) }

// NDCG returns the normalized discounted cumulative gain at rank k of a
// score vector against ground-truth gains.
func NDCG(scores, gains []float64, k int) (float64, error) { return metrics.NDCG(scores, gains, k) }

// TopK returns the indices of the k highest-scoring items.
func TopK(scores []float64, k int) []int { return metrics.TopK(scores, k) }

// KendallTau returns Kendall's τ-b rank correlation (tie-corrected).
func KendallTau(a, b []float64) (float64, error) { return metrics.KendallTau(a, b) }

// PrecisionAtK returns the top-k set agreement between a score vector and
// ground-truth gains.
func PrecisionAtK(scores, gains []float64, k int) (float64, error) {
	return metrics.PrecisionAtK(scores, gains, k)
}

// MRR returns the mean reciprocal rank of the gains' top-t items within
// the score vector's ranking.
func MRR(scores, gains []float64, t int) (float64, error) { return metrics.MRR(scores, gains, t) }

// Explanation decomposes one paper's AttRank score into its flow,
// attention and recency components.
type Explanation = core.Explanation

// Explain decomposes paper i's score from a converged Result obtained
// with the same network, time and parameters.
func Explain(net *Network, res *Result, p Params, i int32) (Explanation, error) {
	return core.Explain(net, res, p, i)
}

// Server exposes a ranked corpus over HTTP (see internal/service for the
// endpoint list: /v1/stats, /v1/top, /v1/paper/{id}, /v1/compare,
// /v1/authors, /v1/related/{id}, /v1/refresh).
type Server = service.Server

// NewServer ranks the network and returns an HTTP service over it. Serve
// it with Server.Handler (any http.Server) or Server.ListenAndServe
// (context-driven graceful shutdown).
func NewServer(net *Network, now int, p Params) (*Server, error) {
	return service.New(net, now, p)
}

// NewSplit partitions a network into current/future states at the given
// test ratio in (1, 2], per the paper's evaluation protocol.
func NewSplit(net *Network, ratio float64) (*Split, error) { return eval.NewSplit(net, ratio) }

// GenerateDataset synthesizes one of the four calibrated dataset
// stand-ins ("hep-th", "aps", "pmc", "dblp") at the given scale (1 is the
// default size; smaller is faster).
func GenerateDataset(name string, scale float64) (Dataset, error) {
	return eval.LoadDataset(name, scale)
}

// GenerateNetwork runs the synthetic generator on a custom profile.
func GenerateNetwork(p Profile) (*Network, error) { return synth.Generate(p) }

// DatasetProfiles returns the four built-in dataset profiles.
func DatasetProfiles() []Profile { return synth.Profiles() }
