// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the mapping), plus ablation
// benches for the design choices DESIGN.md calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each bench reports its headline quantity via b.ReportMetric (e.g. the
// best Spearman ρ, the τ horizon, iteration counts) so `go test -bench`
// output doubles as the reproduction record; cmd/attrank-eval renders the
// same experiments as full tables and charts.
//
// ATTRANK_BENCH_SCALE scales the synthetic datasets (default 0.15; the
// EXPERIMENTS.md numbers use 0.5).
package attrank_test

import (
	"os"
	"strconv"
	"testing"

	"attrank/internal/baselines"
	"attrank/internal/core"
	"attrank/internal/eval"
	"attrank/internal/metrics"
	"attrank/internal/sparse"
)

func benchScale() float64 {
	if s := os.Getenv("ATTRANK_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.15
}

func loadAll(b *testing.B) []eval.Dataset {
	b.Helper()
	ds, err := eval.LoadDatasets(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func loadOne(b *testing.B, name string) eval.Dataset {
	b.Helper()
	d, err := eval.LoadDataset(name, benchScale())
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkFig1aCitationAge regenerates Figure 1a: the citation-age
// distribution of each dataset. Reports the peak age of hep-th and dblp.
func BenchmarkFig1aCitationAge(b *testing.B) {
	ds := loadAll(b)
	b.ResetTimer()
	var r eval.Fig1aResult
	for i := 0; i < b.N; i++ {
		r = eval.Fig1a(ds, 10)
	}
	b.ReportMetric(float64(peakAge(r.Series["hep-th"])), "hepth-peak-years")
	b.ReportMetric(float64(peakAge(r.Series["dblp"])), "dblp-peak-years")
}

func peakAge(dist []float64) int {
	p := 0
	for i, v := range dist {
		if v > dist[p] {
			p = i
		}
	}
	return p
}

// BenchmarkFig1bYearlyCounts regenerates Figure 1b: finding the yearly
// citation series of an old seminal paper overtaken by a newer one.
func BenchmarkFig1bYearlyCounts(b *testing.B) {
	d := loadOne(b, "pmc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Fig1b(d); err != nil {
			b.Skipf("no overtaking pair in this instance: %v", err)
		}
	}
}

// BenchmarkTable1RecentlyPopular regenerates Table 1: how many of the
// top-100 papers by STI were recently popular. Reports the count per
// dataset (paper: 41, 54, 54, 63).
func BenchmarkTable1RecentlyPopular(b *testing.B) {
	ds := loadAll(b)
	b.ResetTimer()
	var r eval.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.Table1(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range ds {
		b.ReportMetric(float64(r.Counts[d.Name]), d.Name+"-popular")
	}
}

// BenchmarkTable2Horizons regenerates Table 2: the test-ratio → τ
// correspondence. Reports τ at ratio 1.6 per dataset (paper: 3, 10, 2, 4).
func BenchmarkTable2Horizons(b *testing.B) {
	ds := loadAll(b)
	b.ResetTimer()
	var r eval.Table2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.Table2(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range ds {
		b.ReportMetric(float64(r.Tau[d.Name][2]), d.Name+"-tau@1.6")
	}
}

// BenchmarkFig2Heatmaps regenerates Figure 2 (and appendix Figures 6–7):
// the full Table-3 sweep of AttRank on DBLP for both metrics. Reports the
// best ρ and its parameters (paper: ρ=0.6316 at α=0.2 β=0.4 y=3).
func BenchmarkFig2Heatmaps(b *testing.B) {
	d := loadOne(b, "dblp")
	b.ResetTimer()
	var h eval.HeatmapResult
	for i := 0; i < b.N; i++ {
		var err error
		h, err = eval.Fig2(d, eval.Rho())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.Best.Value, "best-rho")
	b.ReportMetric(h.Best.Params.Beta, "best-beta")
	b.ReportMetric(float64(h.Best.Params.AttentionYears), "best-y")
}

// BenchmarkFig3Correlation regenerates Figure 3: Spearman ρ of every
// tuned method family across test ratios, on every dataset. Reports the
// AR-vs-best-competitor gap on dblp at ratio 1.6 (paper: AR wins by up to
// 0.077 on DBLP).
func BenchmarkFig3Correlation(b *testing.B) {
	benchSeries(b, func(d eval.Dataset) (eval.SeriesResult, error) { return eval.Fig3(d) })
}

// BenchmarkFig4NDCG50 regenerates Figure 4: nDCG@50 across test ratios
// (paper: AR improves nDCG@50 by up to 0.098 on DBLP).
func BenchmarkFig4NDCG50(b *testing.B) {
	benchSeries(b, func(d eval.Dataset) (eval.SeriesResult, error) { return eval.Fig4(d) })
}

func benchSeries(b *testing.B, run func(eval.Dataset) (eval.SeriesResult, error)) {
	b.Helper()
	ds := loadAll(b)
	b.ResetTimer()
	results := make(map[string]eval.SeriesResult)
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			r, err := run(d)
			if err != nil {
				b.Fatal(err)
			}
			results[d.Name] = r
		}
	}
	r := results["dblp"]
	mid := 2 // ratio 1.6
	ar := r.Series["AR"][mid]
	bestComp := -2.0
	for _, fam := range []string{"CR", "FR", "RAM", "ECM", "WSDM"} {
		if s, ok := r.Series[fam]; ok && s[mid] > bestComp {
			bestComp = s[mid]
		}
	}
	b.ReportMetric(ar, "dblp-AR@1.6")
	b.ReportMetric(ar-bestComp, "dblp-gap@1.6")
}

// BenchmarkFig5NDCGatK regenerates Figure 5: nDCG@k for k ∈ {5,10,50,
// 100,500} at the default ratio. Reports AR's nDCG@5 on dblp (paper: AR
// near 1 at small k on hep-th, PMC, DBLP).
func BenchmarkFig5NDCGatK(b *testing.B) {
	ds := loadAll(b)
	b.ResetTimer()
	results := make(map[string]eval.SeriesResult)
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			r, err := eval.Fig5(d)
			if err != nil {
				b.Fatal(err)
			}
			results[d.Name] = r
		}
	}
	r := results["dblp"]
	b.ReportMetric(r.Series["AR"][0], "dblp-AR-ndcg@5")
	b.ReportMetric(r.Series["AR"][2], "dblp-AR-ndcg@50")
}

// BenchmarkConvergence regenerates the §4.4 comparison: iterations to
// ε=1e−12 at α=0.5 for AttRank, CiteRank and FutureRank (paper: AR < 30,
// CR up to 51, FR up to 35).
func BenchmarkConvergence(b *testing.B) {
	ds := loadAll(b)
	b.ResetTimer()
	var r eval.ConvergenceResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.Convergence(ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range ds {
		row := r.Iterations[d.Name]
		b.ReportMetric(float64(row["AR"]), d.Name+"-AR-iters")
		b.ReportMetric(float64(row["CR"]), d.Name+"-CR-iters")
	}
}

// BenchmarkWFit regenerates the §4.2 calibration of the recency exponent
// w (paper: −0.48 hep-th, −0.12 APS, −0.16 PMC and DBLP).
func BenchmarkWFit(b *testing.B) {
	ds := loadAll(b)
	b.ResetTimer()
	var r eval.WFitResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.WFit(ds, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, d := range ds {
		b.ReportMetric(r.W[d.Name], d.Name+"-w")
	}
}

// BenchmarkAblationAttentionWindow sweeps the attention window y at the
// fixed near-optimal (α, β, γ) on dblp: the paper finds moderate y (3–4)
// best for correlation on slow fields and y=1 best on hep-th.
func BenchmarkAblationAttentionWindow(b *testing.B) {
	d := loadOne(b, "dblp")
	s, err := eval.NewSplit(d.Net, eval.DefaultRatio)
	if err != nil {
		b.Fatal(err)
	}
	truth := s.GroundTruth()
	b.ResetTimer()
	bestY, bestV := 0, -2.0
	for i := 0; i < b.N; i++ {
		bestY, bestV = 0, -2.0
		for y := 1; y <= 5; y++ {
			res, err := core.Rank(s.Current, s.TN, core.Params{
				Alpha: 0.2, Beta: 0.4, Gamma: 0.4, AttentionYears: y, W: d.W,
			})
			if err != nil {
				b.Fatal(err)
			}
			rho, err := metrics.Spearman(res.Scores, truth)
			if err != nil {
				b.Fatal(err)
			}
			if rho > bestV {
				bestY, bestV = y, rho
			}
		}
	}
	b.ReportMetric(float64(bestY), "best-y")
	b.ReportMetric(bestV, "best-rho")
}

// BenchmarkAblationDanglingPolicy compares the paper's uniform dangling
// redistribution against redirecting dangling mass to the recency vector:
// the ranking should be nearly insensitive, confirming the convention is
// not load-bearing.
func BenchmarkAblationDanglingPolicy(b *testing.B) {
	d := loadOne(b, "hep-th")
	s, err := eval.NewSplit(d.Net, eval.DefaultRatio)
	if err != nil {
		b.Fatal(err)
	}
	truth := s.GroundTruth()
	stoch, err := s.Current.StochasticMatrix()
	if err != nil {
		b.Fatal(err)
	}
	n := s.Current.N()
	att := core.AttentionVector(s.Current, s.TN, 1)
	rec := core.RecencyVector(s.Current, s.TN, d.W)
	const alpha, beta, gamma = 0.3, 0.4, 0.3

	iterate := func(useRecencyForDangling bool) []float64 {
		x := sparse.Uniform(n)
		next := make([]float64, n)
		for iter := 0; iter < 100; iter++ {
			if useRecencyForDangling {
				stoch.MulVecDanglingTo(next, x, rec)
			} else {
				stoch.MulVec(next, x)
			}
			for i := range next {
				next[i] = alpha*next[i] + beta*att[i] + gamma*rec[i]
			}
			if sparse.L1Diff(next, x) < 1e-12 {
				x, next = next, x
				break
			}
			x, next = next, x
		}
		return x
	}

	b.ResetTimer()
	var rhoUniform, rhoRecency float64
	for i := 0; i < b.N; i++ {
		u := iterate(false)
		r := iterate(true)
		var err error
		rhoUniform, err = metrics.Spearman(u, truth)
		if err != nil {
			b.Fatal(err)
		}
		rhoRecency, err = metrics.Spearman(r, truth)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rhoUniform, "rho-uniform")
	b.ReportMetric(rhoRecency, "rho-recency")
}

// BenchmarkAblationTolerance checks ranking stability versus the
// convergence threshold: relaxing ε from 1e−12 to 1e−6 must not change
// the induced ranking materially (the paper's 1e−12 is conservative).
func BenchmarkAblationTolerance(b *testing.B) {
	d := loadOne(b, "aps")
	s, err := eval.NewSplit(d.Net, eval.DefaultRatio)
	if err != nil {
		b.Fatal(err)
	}
	p := core.Params{Alpha: 0.3, Beta: 0.3, Gamma: 0.4, AttentionYears: 3, W: d.W}
	b.ResetTimer()
	var agreement float64
	for i := 0; i < b.N; i++ {
		p.Tol = 1e-12
		tight, err := core.Rank(s.Current, s.TN, p)
		if err != nil {
			b.Fatal(err)
		}
		p.Tol = 1e-6
		loose, err := core.Rank(s.Current, s.TN, p)
		if err != nil {
			b.Fatal(err)
		}
		agreement, err = metrics.OverlapAtK(tight.Scores, loose.Scores, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(agreement, "top100-overlap")
}

// BenchmarkRankAttRank measures the raw cost of one AttRank computation
// on the dblp-like network (throughput of the core contribution).
func BenchmarkRankAttRank(b *testing.B) {
	d := loadOne(b, "dblp")
	p := core.Params{Alpha: 0.2, Beta: 0.5, Gamma: 0.3, AttentionYears: 3, W: d.W}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Rank(d.Net, d.Net.MaxYear(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselinesOnce measures one scoring pass of each competitor on
// the dblp-like network.
func BenchmarkBaselinesOnce(b *testing.B) {
	d := loadOne(b, "dblp")
	now := d.Net.MaxYear()
	methods := map[string]func() error{
		"PR": func() error { _, err := (baselines.PageRank{Alpha: 0.5}).Scores(d.Net, now); return err },
		"CR": func() error { _, err := (baselines.CiteRank{Alpha: 0.5, TauDir: 2.6}).Scores(d.Net, now); return err },
		"FR": func() error {
			_, err := (baselines.FutureRank{Alpha: 0.4, Beta: 0.1, Gamma: 0.5, Rho: -0.62}).Scores(d.Net, now)
			return err
		},
		"RAM":  func() error { _, err := (baselines.RAM{Gamma: 0.6}).Scores(d.Net, now); return err },
		"ECM":  func() error { _, err := (baselines.ECM{Alpha: 0.1, Gamma: 0.3}).Scores(d.Net, now); return err },
		"WSDM": func() error { _, err := (baselines.WSDM{Alpha: 1.7, Beta: 3, Iters: 4}).Scores(d.Net, now); return err },
	}
	for name, fn := range methods {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStabilityAcrossSeeds verifies the reproduction's headline
// result (AttRank beats the competitors) is robust to the synthetic
// generator's seed, reporting the mean AR ρ and the number of seeds AR
// won outright.
func BenchmarkStabilityAcrossSeeds(b *testing.B) {
	b.ResetTimer()
	var r eval.StabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.SeedStability("dblp", benchScale()/2, []int64{1, 2, 3, 4, 5}, eval.Rho())
		if err != nil {
			b.Fatal(err)
		}
	}
	mean, std := r.MeanStd("AR")
	b.ReportMetric(mean, "AR-mean-rho")
	b.ReportMetric(std, "AR-std-rho")
	b.ReportMetric(float64(r.ARWins), "AR-wins-of-5")
}

// BenchmarkOriginSweep verifies AttRank's advantage is not specific to
// the paper's half-way split: it reports the AR−NO-ATT gap at the
// earliest and latest origins tried.
func BenchmarkOriginSweep(b *testing.B) {
	d := loadOne(b, "dblp")
	origins := []float64{0.35, 0.5, 0.65}
	b.ResetTimer()
	var r eval.OriginResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.OriginSweep(d, origins, eval.Rho())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Values["AR"][0]-r.Values["NO-ATT"][0], "gap@0.35")
	b.ReportMetric(r.Values["AR"][2]-r.Values["NO-ATT"][2], "gap@0.65")
}

// BenchmarkCalibrationLift measures the decile-lift extension experiment:
// the top decile of AttRank's ranking should gather several times the
// average number of future citations.
func BenchmarkCalibrationLift(b *testing.B) {
	d := loadOne(b, "dblp")
	b.ResetTimer()
	var r eval.CalibrationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.Calibration(d)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TopDecileLift(), "top-decile-lift")
	b.ReportMetric(r.MeanSTI[0], "top-decile-mean-sti")
}

// BenchmarkBestParams regenerates the §4.2 optimal-parameterization
// narrative: per-dataset best {α, β, γ, y} and the ablation maxima.
// Reports dblp's best β and y for correlation (paper: β=0.4, y=3).
func BenchmarkBestParams(b *testing.B) {
	ds := loadAll(b)
	b.ResetTimer()
	var r eval.BestParamsResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.BestParams(ds, eval.Rho())
		if err != nil {
			b.Fatal(err)
		}
	}
	best := r.Best["dblp"]
	b.ReportMetric(best.Params.Beta, "dblp-best-beta")
	b.ReportMetric(float64(best.Params.AttentionYears), "dblp-best-y")
	b.ReportMetric(r.AttentionGain("dblp"), "dblp-attention-gain")
}

// BenchmarkColdStart quantifies the age bias the paper is motivated by:
// ranking quality restricted to papers published in the last 3 years
// before tN. Reports the recent-subset ρ of AttRank vs citation count.
func BenchmarkColdStart(b *testing.B) {
	d := loadOne(b, "dblp")
	b.ResetTimer()
	var r eval.ColdStartResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.ColdStart(d, 3, eval.Rho())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Recent["AR"], "recent-AR-rho")
	b.ReportMetric(r.Recent["CC"], "recent-CC-rho")
	b.ReportMetric(r.Recent["PR"], "recent-PR-rho")
}

// BenchmarkTrendShift measures the emerging-topic extension experiment:
// how many top-100 papers from a topic that started bursting 3 years
// before tN each method surfaces, vs the realized future (truth).
func BenchmarkTrendShift(b *testing.B) {
	b.ResetTimer()
	var r eval.TrendShiftResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = eval.TrendShift(benchScale(), 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.TopicInTopK["truth"]), "truth-top100")
	b.ReportMetric(float64(r.TopicInTopK["AR"]), "AR-top100")
	b.ReportMetric(float64(r.TopicInTopK["NO-ATT"]), "NOATT-top100")
	b.ReportMetric(float64(r.TopicInTopK["CC"]), "CC-top100")
}
