#!/bin/sh
# bench.sh — regenerate the committed benchmark numbers. Run from the
# repository root.
#
# Writes BENCH_core.json (the compiled-operator harness on a 100k-paper
# synthetic power-law network), BENCH_sweep.json (the batched
# parameter-grid sweep vs the sequential per-cell sweep, with a B-sweep
# over block widths), BENCH_service.json (the serving path under
# closed-loop overload: sustained RPS, accepted-latency quantiles and
# shed rates at 1x/2x/4x saturation, graceful-shutdown drain),
# BENCH_cluster.json (a leader plus three WAL-shipping followers on
# loopback: read throughput per replica added, and follower
# crash-recovery bit-equality), BENCH_ingest.json (single-citation
# incremental push re-rank vs a warm full re-rank on the 100k network,
# with reconciliation bit-equality and staleness-bound checks),
# BENCH_shard.json (row-partitioned distributed ranking over loopback
# shard workers at 1/2/4 shards: per-iteration wall clock, boundary
# bytes exchanged per iteration, per-shard resident footprint, gated on
# bit-equality with the single-process kernel), and then runs the
# go-test microbenchmarks for the per-iteration kernels.
#
# The committed BENCH_core.json and BENCH_sweep.json are generated at
# GOMAXPROCS=1 (single-core kernel merit, no scheduler noise). Each is
# re-run at NumCPU as well — not committed, but printed — so regressions
# in the parallel kernels are visible next to the pinned numbers; see
# DESIGN.md §4 and §11.
set -eu

echo "==> attrank-bench, GOMAXPROCS=1 (100k-paper synthetic network -> BENCH_core.json)"
GOMAXPROCS=1 go run ./cmd/attrank-bench -out BENCH_core.json "$@"

echo "==> attrank-bench, all cores (parallel-kernel scaling check, not committed)"
go run ./cmd/attrank-bench -out /tmp/BENCH_core_ncpu.json "$@"

echo "==> attrank-bench -sweep, GOMAXPROCS=1 (grid sweep -> BENCH_sweep.json)"
GOMAXPROCS=1 go run ./cmd/attrank-bench -sweep -sweep-reps 5 -sweep-out BENCH_sweep.json

echo "==> attrank-bench -sweep, all cores (scaling check, not committed)"
go run ./cmd/attrank-bench -sweep -sweep-out /tmp/BENCH_sweep_ncpu.json

echo "==> attrank-bench -serve (overload harness -> BENCH_service.json)"
go run ./cmd/attrank-bench -serve -serve-out BENCH_service.json

echo "==> attrank-bench -cluster (replicated tier -> BENCH_cluster.json)"
go run ./cmd/attrank-bench -cluster -cluster-out BENCH_cluster.json

echo "==> attrank-bench -ingest, GOMAXPROCS=1 (incremental push vs warm full re-rank -> BENCH_ingest.json)"
GOMAXPROCS=1 go run ./cmd/attrank-bench -ingest -ingest-out BENCH_ingest.json

echo "==> attrank-bench -shard (sharded ranking over loopback workers -> BENCH_shard.json)"
go run ./cmd/attrank-bench -shard -shard-out BENCH_shard.json

echo "==> go test -bench (sparse + core kernels + scratch metrics + shard exchange)"
go test -run XXX -bench 'Iteration|Rank100k|Spearman|NDCG|ShardExchange' -benchtime 10x -benchmem \
	./internal/sparse/ ./internal/core/ ./internal/metrics/ ./internal/shard/
