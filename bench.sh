#!/bin/sh
# bench.sh — regenerate the ranking-kernel benchmark numbers. Run from
# the repository root.
#
# Writes BENCH_core.json (the committed snapshot of the compiled-operator
# harness on a 100k-paper synthetic power-law network) and then runs the
# go-test microbenchmarks for the per-iteration kernels.
set -eu

echo "==> attrank-bench (100k-paper synthetic network -> BENCH_core.json)"
go run ./cmd/attrank-bench -out BENCH_core.json "$@"

echo "==> go test -bench (sparse + core kernels)"
go test -run XXX -bench 'Iteration|Rank100k' -benchtime 10x \
	./internal/sparse/ ./internal/core/
