#!/bin/sh
# bench.sh — regenerate the committed benchmark numbers. Run from the
# repository root.
#
# Writes BENCH_core.json (the compiled-operator harness on a 100k-paper
# synthetic power-law network), BENCH_service.json (the serving path
# under closed-loop overload: sustained RPS, accepted-latency quantiles
# and shed rates at 1x/2x/4x saturation, graceful-shutdown drain), and
# then runs the go-test microbenchmarks for the per-iteration kernels.
set -eu

echo "==> attrank-bench (100k-paper synthetic network -> BENCH_core.json)"
go run ./cmd/attrank-bench -out BENCH_core.json "$@"

echo "==> attrank-bench -serve (overload harness -> BENCH_service.json)"
go run ./cmd/attrank-bench -serve -serve-out BENCH_service.json

echo "==> go test -bench (sparse + core kernels)"
go test -run XXX -bench 'Iteration|Rank100k' -benchtime 10x \
	./internal/sparse/ ./internal/core/
