#!/bin/sh
# verify.sh — the full gate: build everything, vet everything, run all
# tests under the race detector with a shuffled execution order. Run
# from the repository root.
#
#   ./verify.sh         full gate (gofmt + build + vet + race -shuffle=on
#                       over every package + a one-rep batched-sweep
#                       smoke so the blocked-SpMM path can't silently rot)
#   ./verify.sh quick   kernel + durability + overload gate: gofmt +
#                       build + vet, then a short-mode race pass over the
#                       ranking hot path (sparse pool/fused/multi kernels,
#                       core operator/parallel/RankBatch tests, scratch
#                       metrics), the ingest WAL tests, the
#                       admission-control tests, the replication
#                       follower tests, the impact-indicator suites and
#                       the sharded-ranking suites (partition, exchange
#                       wire, loopback bit-equality, zero-alloc rounds) —
#                       seconds instead of minutes, for tight iteration
#   ./verify.sh fuzz    short coverage-guided fuzz sessions for the
#                       dataio readers, HTTP query parsing and the shard
#                       exchange wire decoders
#
# Benchmarks are separate: see bench.sh, which regenerates
# BENCH_core.json and BENCH_service.json.
set -eu

echo "==> gofmt -l"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "verify.sh: gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

if [ "${1:-}" = "quick" ]; then
	echo "==> go test -race -short (kernel packages)"
	go test -race -short -run 'Parallel|Fused|Multi|Operator|Pool|Partition|RankBatch|Tiled|RCM|Relabel|Window|Degree' \
		./internal/sparse/ ./internal/core/
	echo "==> go test -race (scratch metrics bit-equality)"
	go test -race -run 'Scratch|Ordering|Ranks' ./internal/metrics/
	echo "==> go test -race -run WAL (ingest durability + replication log)"
	go test -race -run 'WAL|WireSize|ReplState' ./internal/ingest/
	echo "==> go test -race (admission control + replica serving policy)"
	go test -race -run 'Admission|Backpressure|Deadline|Replica|RateLimiter|MaxRPS' ./internal/service/
	echo "==> go test -race -short (replication follower)"
	go test -race -short -run 'Follower' ./internal/replication/
	echo "==> go test -race (incremental push path: kernel, overlay, metamorphic, ingest, replication)"
	go test -race -run 'Push|Pusher|Overlay|Incremental|FlushDebounceRace|EpochMarkerLegacy' \
		./internal/sparse/ ./internal/graph/ ./internal/core/ ./internal/ingest/ ./internal/replication/
	echo "==> go test -race (impact indicators: classes, PageRank bit-equality, endpoints, replication)"
	go test -race -run 'Impact|Class|Indicator|PageRank|Threshold|Impulse|NormalizeID|Golden' \
		./internal/impact/ ./internal/core/ ./internal/ingest/ ./internal/service/ ./internal/replication/
	echo "==> go test -race (sharded ranking: partition, block extraction, exchange, bit-equality, zero-alloc)"
	go test -race -run 'Shard|Exchange|Boundary|TileBlock|SessionGuards' \
		./internal/sparse/ ./internal/shard/
	echo "verify.sh: quick checks passed"
	exit 0
fi

if [ "${1:-}" = "fuzz" ]; then
	for target in FuzzReadTSV FuzzReadJSON FuzzReadBinary; do
		echo "==> go test -fuzz $target (dataio)"
		go test -run "^${target}\$" -fuzz "^${target}\$" -fuzztime 5s ./internal/dataio/
	done
	for target in FuzzTopQuery FuzzCompareQuery FuzzPaperID FuzzImpactID FuzzImpactBatch; do
		echo "==> go test -fuzz $target (service)"
		go test -run "^${target}\$" -fuzz "^${target}\$" -fuzztime 5s ./internal/service/
	done
	echo "==> go test -fuzz FuzzShardFrame (shard exchange wire)"
	go test -run '^FuzzShardFrame$' -fuzz '^FuzzShardFrame$' -fuzztime 5s ./internal/shard/
	echo "verify.sh: fuzz sessions passed"
	exit 0
fi

echo "==> go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

echo "==> attrank-bench -sweep smoke (one rep, small network)"
GOMAXPROCS=1 go run ./cmd/attrank-bench -sweep -sweep-papers 20000 -sweep-reps 1 \
	-sweep-out /tmp/BENCH_sweep_smoke.json

echo "==> attrank-bench -smoke (tiled vs csr fused vs serial bit-equality, seeded 10k graph)"
go run ./cmd/attrank-bench -smoke

echo "==> attrank-bench -ingest smoke (push-vs-exact reconciliation bit-equality, 20k graph)"
# Exits non-zero if a reconciliation epoch is not bit-identical to the
# exact rank, if interim push scores drift past their residual bound, or
# if follower-style replay diverges.
GOMAXPROCS=1 go run ./cmd/attrank-bench -ingest -ingest-papers 20000 -ingest-writes 128 \
	-ingest-full-reps 5 -ingest-live-writes 40 -ingest-out /tmp/BENCH_ingest_smoke.json

echo "==> attrank-bench -impact smoke (served indicator classes vs in-process recompute, 2k corpus)"
# Exits non-zero if any score or C1–C5 class served by /v1/impact differs
# from an independent recompute through internal/impact.
go run ./cmd/attrank-bench -impact -impact-papers 2000

echo "==> attrank-bench -shard smoke (2-shard loopback rank vs single-process kernel, 20k graph)"
# Exits non-zero on the first score or residual bit that differs between
# the sharded rank (cold and warm-started) and the local tiled kernel at
# the same partition count, or if the rank silently fell back to the
# local kernel instead of taking the distributed path.
go run ./cmd/attrank-bench -shard -shard-papers 20000 -shard-counts 2 -shard-reps 1 \
	-shard-out /tmp/BENCH_shard_smoke.json

echo "verify.sh: all checks passed"
