#!/bin/sh
# verify.sh — the full gate: build everything, vet everything, run all
# tests under the race detector. Run from the repository root.
#
#   ./verify.sh         full gate (build + vet + race over every package)
#   ./verify.sh quick   kernel gate: build + vet, then a short-mode race
#                       pass over the ranking hot path only (sparse pool/
#                       fused kernel, core operator/parallel tests) —
#                       seconds instead of minutes, for kernel iteration
#
# Benchmarks are separate: see bench.sh, which regenerates BENCH_core.json.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

if [ "${1:-}" = "quick" ]; then
	echo "==> go test -race -short (kernel packages)"
	go test -race -short -run 'Parallel|Fused|Operator|Pool|Partition' \
		./internal/sparse/ ./internal/core/
	echo "verify.sh: quick checks passed"
	exit 0
fi

echo "==> go test -race ./..."
go test -race ./...

echo "verify.sh: all checks passed"
