#!/bin/sh
# verify.sh — the full gate: build everything, vet everything, run all
# tests under the race detector. Run from the repository root.
#
#   ./verify.sh         full gate (gofmt + build + vet + race over every
#                       package)
#   ./verify.sh quick   kernel + durability gate: gofmt + build + vet,
#                       then a short-mode race pass over the ranking hot
#                       path (sparse pool/fused kernel, core operator/
#                       parallel tests) and the ingest WAL tests —
#                       seconds instead of minutes, for tight iteration
#
# Benchmarks are separate: see bench.sh, which regenerates BENCH_core.json.
set -eu

echo "==> gofmt -l"
unformatted=$(gofmt -l cmd internal)
if [ -n "$unformatted" ]; then
	echo "verify.sh: gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

if [ "${1:-}" = "quick" ]; then
	echo "==> go test -race -short (kernel packages)"
	go test -race -short -run 'Parallel|Fused|Operator|Pool|Partition' \
		./internal/sparse/ ./internal/core/
	echo "==> go test -race -run WAL (ingest durability)"
	go test -race -run 'WAL' ./internal/ingest/
	echo "verify.sh: quick checks passed"
	exit 0
fi

echo "==> go test -race ./..."
go test -race ./...

echo "verify.sh: all checks passed"
