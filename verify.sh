#!/bin/sh
# verify.sh — the full gate: build everything, vet everything, run all
# tests under the race detector. Run from the repository root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify.sh: all checks passed"
