package attrank_test

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"attrank"
	"attrank/internal/baselines"
	"attrank/internal/core"
	"attrank/internal/eval"
)

// TestEndToEndPipeline exercises the full flow a downstream user would
// run: generate a dataset, persist it, reload it, split it temporally,
// rank the current state with AttRank and every baseline, and score the
// rankings against the realized future.
func TestEndToEndPipeline(t *testing.T) {
	d, err := attrank.GenerateDataset("dblp", 0.08)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "dblp.tsv")
	if err := attrank.SaveNetwork(path, d.Net); err != nil {
		t.Fatal(err)
	}
	net, err := attrank.LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != d.Net.N() || net.Edges() != d.Net.Edges() {
		t.Fatalf("round trip changed the network: %d/%d vs %d/%d",
			net.N(), net.Edges(), d.Net.N(), d.Net.Edges())
	}

	split, err := attrank.NewSplit(net, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	truth := split.GroundTruth()

	rhoOf := func(scores []float64) float64 {
		t.Helper()
		rho, err := attrank.Spearman(scores, truth)
		if err != nil {
			t.Fatal(err)
		}
		return rho
	}

	ar, err := attrank.Rank(split.Current, split.TN, attrank.RecommendedParams(d.W))
	if err != nil {
		t.Fatal(err)
	}
	arRho := rhoOf(ar.Scores)

	noAtt, err := attrank.Rank(split.Current, split.TN, attrank.RecommendedParams(d.W).NoAtt())
	if err != nil {
		t.Fatal(err)
	}
	noAttRho := rhoOf(noAtt.Scores)

	cc, err := attrank.CitationCount{}.Scores(split.Current, split.TN)
	if err != nil {
		t.Fatal(err)
	}
	ccRho := rhoOf(cc)

	// The paper's headline shape: the attention mechanism earns its keep.
	if arRho <= noAttRho {
		t.Errorf("AttRank (%.4f) should beat NO-ATT (%.4f)", arRho, noAttRho)
	}
	if arRho <= ccRho {
		t.Errorf("AttRank (%.4f) should beat citation count (%.4f)", arRho, ccRho)
	}

	// Every baseline runs on the same split and yields a sane correlation.
	for _, m := range []attrank.Method{
		attrank.PageRank{Alpha: 0.5},
		attrank.CiteRank{Alpha: 0.5, TauDir: 2.6},
		attrank.FutureRank{Alpha: 0.4, Beta: 0.1, Gamma: 0.5, Rho: -0.62},
		attrank.RAM{Gamma: 0.6},
		attrank.ECM{Alpha: 0.1, Gamma: 0.3},
		attrank.WSDM{Alpha: 1.7, Beta: 3, Iters: 4},
	} {
		scores, err := m.Scores(split.Current, split.TN)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		rho := rhoOf(scores)
		if math.IsNaN(rho) || rho < -1 || rho > 1 {
			t.Errorf("%s: ρ = %v out of range", m.Name(), rho)
		}
	}
}

// TestSeriesExperimentsSmoke runs the Figure 3/4/5 drivers end to end on
// a tiny dataset and checks the result structure and the AttRank-wins
// shape at the default ratio.
func TestSeriesExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("series sweeps are slow")
	}
	d, err := eval.LoadDataset("hep-th", 0.08)
	if err != nil {
		t.Fatal(err)
	}
	fig3, err := eval.Fig3(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.X) != 5 {
		t.Fatalf("fig3 has %d ratios", len(fig3.X))
	}
	ar := fig3.Series["AR"]
	if len(ar) != 5 {
		t.Fatalf("AR series has %d points", len(ar))
	}
	for fam, s := range fig3.Series {
		if len(s) != 5 {
			t.Errorf("family %s has %d points", fam, len(s))
		}
	}
	// AttRank's best must dominate its own ablations at every ratio.
	for i := range ar {
		if ar[i] < fig3.Series["NO-ATT"][i] || ar[i] < fig3.Series["ATT-ONLY"][i] {
			t.Errorf("AR (%.4f) below an ablation at ratio %v", ar[i], fig3.X[i])
		}
	}

	fig5, err := eval.Fig5(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5.X) != 5 || fig5.X[0] != 5 || fig5.X[4] != 500 {
		t.Fatalf("fig5 x-axis = %v", fig5.X)
	}
}

// TestNonConvergenceIsSkippedNotFatal verifies the sweep tolerates
// configurations that fail, mirroring the paper's exclusion of
// non-converging parameter ranges.
func TestNonConvergenceIsSkippedNotFatal(t *testing.T) {
	d, err := eval.LoadDataset("hep-th", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eval.NewSplit(d.Net, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	truth := s.GroundTruth()
	cands := []eval.Candidate{
		// MaxIter 1 cannot converge at this tolerance.
		{Method: baselines.FutureRank{Alpha: 0.5, Beta: 0, Gamma: 0.4, Rho: -0.62, MaxIter: 1}, Label: "doomed"},
		{Method: baselines.RAM{Gamma: 0.5}, Label: "fine"},
	}
	results, best := eval.SweepCandidates(s, truth, cands, eval.Rho())
	if results[0].Err == nil {
		t.Error("doomed candidate should fail")
	}
	if !errors.Is(results[0].Err, baselines.ErrNotConverged) {
		t.Errorf("doomed error = %v, want ErrNotConverged", results[0].Err)
	}
	if best != 1 {
		t.Errorf("best = %d, want the surviving candidate", best)
	}
}

// TestConvergenceMatchesPaperEnvelope pins the §4.4 claim on a mid-size
// network: AttRank at α=0.5 converges within the paper's 30-iteration
// envelope.
func TestConvergenceMatchesPaperEnvelope(t *testing.T) {
	d, err := eval.LoadDataset("pmc", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Rank(d.Net, d.Net.MaxYear(), core.Params{
		Alpha: 0.5, Beta: 0.3, Gamma: 0.2, AttentionYears: 3, W: d.W,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 40 {
		t.Errorf("converged=%v in %d iterations; paper reports < 30 at α=0.5",
			res.Converged, res.Iterations)
	}
}

// TestDeterministicEndToEnd pins the full pipeline's determinism: two
// independent generations of the same profile, ranked with the same
// parameters, must produce the identical ordering.
func TestDeterministicEndToEnd(t *testing.T) {
	run := func() []int {
		d, err := eval.LoadDataset("hep-th", 0.07)
		if err != nil {
			t.Fatal(err)
		}
		res, err := attrank.Rank(d.Net, d.Net.MaxYear(), attrank.RecommendedParams(d.W))
		if err != nil {
			t.Fatal(err)
		}
		return attrank.TopK(res.Scores, d.Net.N())
	}
	first := run()
	// Bypass the dataset cache with a direct regeneration.
	p, err := synthProfile("hep-th", 0.07)
	if err != nil {
		t.Fatal(err)
	}
	net, err := attrank.GenerateNetwork(p)
	if err != nil {
		t.Fatal(err)
	}
	w, err := attrank.FitW(net)
	if err != nil {
		t.Fatal(err)
	}
	res, err := attrank.Rank(net, net.MaxYear(), attrank.RecommendedParams(w))
	if err != nil {
		t.Fatal(err)
	}
	second := attrank.TopK(res.Scores, net.N())
	if len(first) != len(second) {
		t.Fatalf("sizes differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("ordering differs at position %d: %d vs %d", i, first[i], second[i])
		}
	}
}

func synthProfile(name string, scale float64) (attrank.Profile, error) {
	for _, p := range attrank.DatasetProfiles() {
		if p.Name == name {
			return p.Scale(scale), nil
		}
	}
	return attrank.Profile{}, fmt.Errorf("unknown profile %s", name)
}
