package attrank_test

import (
	"fmt"
	"log"

	"attrank"
)

// buildExampleNetwork assembles the small 1998 bioinformatics corpus used
// by the godoc examples.
func buildExampleNetwork() *attrank.Network {
	b := attrank.NewBuilder()
	papers := []struct {
		id   string
		year int
	}{
		{"blast90", 1990}, {"fasta88", 1988}, {"hmm94", 1994},
		{"blast97", 1997}, {"tool98a", 1998}, {"tool98b", 1998},
	}
	for _, p := range papers {
		if _, err := b.AddPaper(p.id, p.year, nil, ""); err != nil {
			log.Fatal(err)
		}
	}
	for _, e := range [][2]string{
		{"hmm94", "blast90"}, {"hmm94", "fasta88"}, {"blast97", "blast90"},
		{"tool98a", "blast97"}, {"tool98b", "blast97"}, {"tool98a", "blast90"},
	} {
		b.AddEdge(e[0], e[1])
	}
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func ExampleRank() {
	net := buildExampleNetwork()
	res, err := attrank.Rank(net, 1998, attrank.Params{
		Alpha: 0.2, Beta: 0.5, Gamma: 0.3, AttentionYears: 3, W: -0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	top := attrank.TopK(res.Scores, 2)
	fmt.Println(net.Paper(int32(top[0])).ID)
	fmt.Println(net.Paper(int32(top[1])).ID)
	// Output:
	// blast97
	// blast90
}

func ExampleAttentionVector() {
	net := buildExampleNetwork()
	// Citations made in 1997–1998: blast97→blast90, tool98a→{blast97,
	// blast90}, tool98b→blast97. blast97 holds 2 of the 4.
	att := attrank.AttentionVector(net, 1998, 2)
	idx, _ := net.Lookup("blast97")
	fmt.Printf("%.2f\n", att[idx])
	// Output:
	// 0.50
}

func ExampleSpearman() {
	rho, err := attrank.Spearman(
		[]float64{0.9, 0.5, 0.1},
		[]float64{10, 5, 1},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f\n", rho)
	// Output:
	// 1.0
}

func ExampleNDCG() {
	// A method that ranks the items exactly by their true gains.
	ndcg, err := attrank.NDCG([]float64{3, 2, 1}, []float64{30, 20, 10}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f\n", ndcg)
	// Output:
	// 1.0
}

func ExampleNewSplit() {
	net := buildExampleNetwork()
	split, err := attrank.NewSplit(net, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(split.Current.N(), "papers up to", split.TN)
	// Output:
	// 3 papers up to 1994
}

func ExampleParams_NoAtt() {
	p := attrank.Params{Alpha: 0.2, Beta: 0.5, Gamma: 0.3, AttentionYears: 3, W: -0.3}
	na := p.NoAtt()
	fmt.Printf("β=%.1f γ=%.1f\n", na.Beta, na.Gamma)
	// Output:
	// β=0.0 γ=0.8
}
